//! Hot-path measurement kit for experiment E12 and the `e12_hotpath` bench.
//!
//! The PR that introduced the inline small-set `VertexSet` representation and the
//! `HypergraphIndex` needs an honest **before/after** comparison.  This module keeps a
//! faithful replica of the *pre-refactor* data layout — [`RefSet`], a vertex set that
//! always heap-allocates a `Vec<u64>` and runs `full`/`complement` as per-bit loops,
//! exactly like the seed implementation — plus the pre-refactor query paths (the
//! query-driven oracle wrapper, the edge-list transversal scan), and measures both
//! sides on the same workloads:
//!
//! * `oracle::classify` with the word-wise materialized fast path vs. the pre-refactor
//!   per-vertex query path ([`QueryDrivenOracle`] hides the bitmap, which is precisely
//!   what every oracle did before);
//! * transversal checks through the [`qld_hypergraph::HypergraphIndex`] arena vs. the
//!   heap edge-list scan;
//! * `minimize_transversal` (clone-per-step before, in-place word ops after);
//! * the `full` / `complement` / `lex_cmp` kernels themselves.
//!
//! Every measurement first cross-checks that baseline and optimized paths compute the
//! same answers, so a speedup can never come from a semantic drift.  Results are
//! reported as [`HotpathMetric`] rows; the bench serializes them into the JSON
//! trajectory file `target/e12_hotpath.json` (one JSON object per run).

use qld_core::oracle::{classify, MaterializedOracle, NodeClass, SAlphaOracle};
use qld_core::DualInstance;
use qld_hypergraph::{generators, Hypergraph, Vertex, VertexSet};
use qld_logspace::SpaceMeter;
use std::hint::black_box;
use std::time::Instant;

/// One before/after measurement.
#[derive(Debug, Clone)]
pub struct HotpathMetric {
    /// What was measured (e.g. `"classify"`, `"transversal-check"`).
    pub name: &'static str,
    /// Universe size of the workload (`n ≤ 64` inline, `n > 64` spilled).
    pub universe: usize,
    /// Mean nanoseconds per operation on the pre-refactor path.
    pub baseline_ns: f64,
    /// Mean nanoseconds per operation on the refactored path.
    pub optimized_ns: f64,
    /// Operations per timed iteration (for context in reports).
    pub ops_per_iter: usize,
}

impl HotpathMetric {
    /// Baseline-over-optimized throughput ratio (`> 1` means the refactor is faster).
    pub fn speedup(&self) -> f64 {
        if self.optimized_ns > 0.0 {
            self.baseline_ns / self.optimized_ns
        } else {
            f64::INFINITY
        }
    }

    /// One JSON object for the bench trajectory file.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"universe\":{},\"baseline_ns\":{:.1},\"optimized_ns\":{:.1},\"speedup\":{:.3}}}",
            self.name,
            self.universe,
            self.baseline_ns,
            self.optimized_ns,
            self.speedup()
        )
    }
}

// ---------------------------------------------------------------------------
// Faithful replica of the pre-refactor `VertexSet` (always-heap `Vec<u64>`,
// per-bit `full`/`complement`, per-element `lex_cmp`).
// ---------------------------------------------------------------------------

/// The seed repository's vertex-set layout: a heap vector of words, even for
/// single-word universes.
#[derive(Clone, PartialEq, Eq)]
pub struct RefSet {
    words: Vec<u64>,
    capacity: usize,
}

impl RefSet {
    /// Empty set, pre-refactor layout.
    pub fn empty(capacity: usize) -> Self {
        RefSet {
            words: vec![0; capacity.div_ceil(64).max(1)],
            capacity,
        }
    }

    /// The pre-refactor `full`: one `insert` per vertex.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::empty(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Copies a [`VertexSet`] into the pre-refactor layout.
    pub fn from_set(s: &VertexSet) -> Self {
        let mut out = Self::empty(s.capacity().max(1));
        for v in s.iter() {
            out.insert(v.index());
        }
        out
    }

    /// Member insertion.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Word-wise intersection test (this one was already word-wise before).
    pub fn intersects(&self, other: &RefSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// The pre-refactor `complement`: one membership probe + insert per vertex.
    pub fn complement(&self, universe: usize) -> RefSet {
        let mut out = RefSet::empty(universe);
        for i in 0..universe {
            if !self.contains(i) {
                out.insert(i);
            }
        }
        out
    }

    /// The pre-refactor `without`: clone then remove.
    pub fn without(&self, i: usize) -> RefSet {
        let mut s = self.clone();
        s.words[i / 64] &= !(1 << (i % 64));
        s
    }

    /// The pre-refactor `lex_cmp`: walk both member sequences element by element.
    pub fn lex_cmp(&self, other: &RefSet) -> std::cmp::Ordering {
        let mut a = self.iter();
        let mut b = other.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return std::cmp::Ordering::Equal,
                (None, Some(_)) => return std::cmp::Ordering::Less,
                (Some(_), None) => return std::cmp::Ordering::Greater,
                (Some(x), Some(y)) => match x.cmp(&y) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                },
            }
        }
    }

    /// Members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// Pre-refactor transversal check: scan the heap edge list, one `intersects` per edge
/// over individually allocated sets.
pub fn ref_is_transversal(edges: &[RefSet], t: &RefSet) -> bool {
    edges.iter().all(|e| e.intersects(t))
}

/// Pre-refactor `minimize_transversal`: one full-set clone per removal probe.
pub fn ref_minimize_transversal(edges: &[RefSet], t: &RefSet) -> RefSet {
    let mut current = t.clone();
    for v in t.iter() {
        let candidate = current.without(v);
        if ref_is_transversal(edges, &candidate) {
            current = candidate;
        }
    }
    current
}

// ---------------------------------------------------------------------------
// Faithful replica of the pre-wide-word arena kernels: plain zip loops over
// the common word prefix, one full arena scan per probe, and no batched probe
// API at all — exactly the `HypergraphIndex` paths before the wide-word PR.
// The `words_per_edge ∈ {1, 2}` fast paths did not change in that PR, so the
// wide measurements run at 192/320/1024 vertices (3/5/16 words per edge),
// where only the generic path existed before.
// ---------------------------------------------------------------------------

/// Pre-wide-word `is_transversal` over a raw arena copy: per-row zip scan with
/// a per-word early exit, one full pass per probe.
pub fn ref_arena_is_transversal(arena: &[u64], wpe: usize, tw: &[u64]) -> bool {
    if tw.len() >= wpe {
        arena
            .chunks_exact(wpe)
            .all(|row| row.iter().zip(tw).any(|(a, b)| a & b != 0))
    } else {
        arena.chunks_exact(wpe).all(|row| {
            let common = row.len().min(tw.len());
            row[..common].iter().zip(tw).any(|(a, b)| a & b != 0)
        })
    }
}

/// Pre-wide-word `evaluate_dnf` over a raw arena copy: per-row zip subset scan,
/// one full pass per probe.
pub fn ref_arena_evaluate_dnf(arena: &[u64], wpe: usize, tw: &[u64]) -> bool {
    if tw.len() >= wpe {
        arena
            .chunks_exact(wpe)
            .any(|row| row.iter().zip(tw).all(|(a, b)| a & !b == 0))
    } else {
        arena.chunks_exact(wpe).any(|row| {
            let common = row.len().min(tw.len());
            row[..common].iter().zip(tw).all(|(a, b)| a & !b == 0)
                && row[common..].iter().all(|&a| a == 0)
        })
    }
}

/// An oracle adapter that hides the backing bitmap, forcing `classify` onto the
/// per-vertex query path — exactly what *every* oracle (including the materialized
/// one) did before this refactor.
pub struct QueryDrivenOracle<'a>(pub &'a dyn SAlphaOracle);

impl SAlphaOracle for QueryDrivenOracle<'_> {
    fn contains(&self, v: Vertex) -> bool {
        self.0.contains(v)
    }
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// A classify workload: a validated instance plus a deterministic family of node sets.
pub struct ClassifyWorkload {
    /// Instance the nodes are classified against.
    pub inst: DualInstance,
    /// The `S_α` sets to classify.
    pub sets: Vec<VertexSet>,
}

/// Deterministic pseudo-random subsets of `0..n` (splitmix-style), densities mixed.
fn sample_sets(n: usize, count: usize, seed: u64) -> Vec<VertexSet> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|i| {
            let mut s = VertexSet::empty(n);
            for v in 0..n {
                // vary density across samples: keep roughly (i%3+1)/4 of the vertices
                if next() % 4 <= (i % 3) as u64 {
                    s.insert(Vertex::from(v));
                }
            }
            s
        })
        .collect()
}

/// The small-universe (`n ≤ 64`, inline representation) classify workload.
pub fn classify_workload_small() -> ClassifyWorkload {
    let li = generators::matching_instance(5); // n = 10, |G| ∨ |H| = 32
    let inst = DualInstance::new(li.g, li.h).unwrap().oriented().0;
    let n = inst.num_vertices();
    let mut sets = vec![VertexSet::full(n)];
    sets.extend(sample_sets(n, 40, 0xE12));
    ClassifyWorkload { inst, sets }
}

/// The spilled-universe (`n > 64`) classify workload.  `classify` is combinatorial on
/// any validated simple pair, so a random simple hypergraph against itself exercises
/// the same code paths at two words per set.
pub fn classify_workload_spilled() -> ClassifyWorkload {
    let g = generators::random_simple_hypergraph(80, 24, 3..=7, 0xE12);
    let inst = DualInstance::new(g.clone(), g).unwrap();
    let n = inst.num_vertices();
    let mut sets = vec![VertexSet::full(n)];
    sets.extend(sample_sets(n, 40, 0x5E12));
    ClassifyWorkload { inst, sets }
}

/// A transversal workload: a hypergraph plus candidate sets (identical content is also
/// mirrored into the pre-refactor layout by the measurement).
pub fn transversal_workload(n: usize, m: usize, seed: u64) -> (Hypergraph, Vec<VertexSet>) {
    let h = generators::random_simple_hypergraph(n, m, 2..=5, seed);
    (h, sample_sets(n, 60, seed ^ 0xABCD))
}

/// A wide-universe workload (`words_per_edge ≥ 3`): a larger hypergraph plus
/// probes mixing repaired transversals (the full-arena-scan regime the solver
/// loops live in), raw samples (early rejects), and edge supersets (so the
/// DNF/covers-edge side of `classify_many` has hits to verify).
pub fn wide_workload(n: usize, m: usize, seed: u64) -> (Hypergraph, Vec<VertexSet>) {
    let h = generators::random_simple_hypergraph(n, m, 3..=9, seed);
    let raw = sample_sets(n, 32, seed ^ 0xBEEF);
    let mut probes = repair_to_transversals(&h, &raw[..raw.len() / 2]);
    probes.extend_from_slice(&raw[raw.len() / 2..]);
    for (i, e) in h.edges().iter().take(4).enumerate() {
        let mut s = e.clone();
        for v in 0..n {
            if (v * 7 + i) % 13 == 0 {
                s.insert(Vertex::from(v));
            }
        }
        probes.push(s);
    }
    (h, probes)
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Times `f`: after one warm-up call, runs four passes of `iters` iterations and
/// returns the **minimum** mean nanoseconds per iteration across passes (the minimum
/// is the standard robust estimator for short kernels on a noisy machine).
pub fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let iters = iters.max(1);
    let mut best = f64::INFINITY;
    for _ in 0..4 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Measures `oracle::classify` on a workload: materialized word-wise fast path vs.
/// the pre-refactor query-driven path.  Panics if the two paths ever classify a node
/// differently.
pub fn measure_classify(w: &ClassifyWorkload, iters: usize) -> HotpathMetric {
    let meter = SpaceMeter::new();
    let oracles: Vec<MaterializedOracle> = w
        .sets
        .iter()
        .map(|s| MaterializedOracle::new(s.clone(), &meter))
        .collect();
    // Agreement check first: the fast path must not change any classification.
    for o in &oracles {
        let fast = classify(&w.inst, o, &meter);
        let slow = classify(&w.inst, &QueryDrivenOracle(o), &meter);
        assert_eq!(
            fast, slow,
            "materialized fast path changed a classification"
        );
    }
    let optimized_ns = time_ns(iters, || {
        for o in &oracles {
            black_box::<NodeClass>(classify(&w.inst, o, &meter));
        }
    });
    let baseline_ns = time_ns(iters, || {
        for o in &oracles {
            black_box::<NodeClass>(classify(&w.inst, &QueryDrivenOracle(o), &meter));
        }
    });
    HotpathMetric {
        name: "classify",
        universe: w.inst.num_vertices(),
        baseline_ns,
        optimized_ns,
        ops_per_iter: oracles.len(),
    }
}

/// Repairs each candidate into a transversal of `h` by greedily covering the edges it
/// misses.  Transversal candidates make the check scan every edge — the regime the
/// solver loops (`minimize_transversal`, `is_minimal_transversal`) actually live in —
/// where random subsets would mostly measure first-edge early exits.
pub fn repair_to_transversals(h: &Hypergraph, candidates: &[VertexSet]) -> Vec<VertexSet> {
    candidates
        .iter()
        .map(|t| {
            let mut t = t.clone();
            for e in h.edges() {
                if !e.intersects(&t) {
                    t.insert(
                        e.min_vertex()
                            .expect("simple hypergraphs have no empty edge"),
                    );
                }
            }
            t
        })
        .collect()
}

/// Measures transversal checks: indexed arena scan vs. the pre-refactor heap edge
/// list.  Half the candidates are repaired into full-scan transversals, half stay
/// early-exit rejections.  Panics if the two paths disagree on any candidate.
pub fn measure_transversal(h: &Hypergraph, raw: &[VertexSet], iters: usize) -> HotpathMetric {
    let mut candidates = repair_to_transversals(h, &raw[..raw.len() / 2]);
    candidates.extend_from_slice(&raw[raw.len() / 2..]);
    let candidates = &candidates;
    let ref_edges: Vec<RefSet> = h.edges().iter().map(RefSet::from_set).collect();
    let ref_candidates: Vec<RefSet> = candidates.iter().map(RefSet::from_set).collect();
    h.index(); // build outside the timed region: the index is cached across queries
    for (t, rt) in candidates.iter().zip(&ref_candidates) {
        assert_eq!(
            h.is_transversal(t),
            ref_is_transversal(&ref_edges, rt),
            "indexed transversal check disagrees with the reference"
        );
    }
    let optimized_ns = time_ns(iters, || {
        for t in candidates {
            black_box(h.is_transversal(t));
        }
    });
    let baseline_ns = time_ns(iters, || {
        for t in &ref_candidates {
            black_box(ref_is_transversal(&ref_edges, t));
        }
    });
    HotpathMetric {
        name: "transversal-check",
        universe: h.num_vertices(),
        baseline_ns,
        optimized_ns,
        ops_per_iter: candidates.len(),
    }
}

/// Measures `minimize_transversal`: in-place word ops vs. clone-per-step reference.
pub fn measure_minimize_transversal(
    h: &Hypergraph,
    candidates: &[VertexSet],
    iters: usize,
) -> HotpathMetric {
    let n = h.num_vertices();
    let transversals = repair_to_transversals(h, candidates);
    let ref_edges: Vec<RefSet> = h.edges().iter().map(RefSet::from_set).collect();
    let ref_transversals: Vec<RefSet> = transversals.iter().map(RefSet::from_set).collect();
    for (t, rt) in transversals.iter().zip(&ref_transversals) {
        let fast = h.minimize_transversal(t);
        let slow = ref_minimize_transversal(&ref_edges, rt);
        assert_eq!(
            fast.to_indices(),
            slow.iter().collect::<Vec<_>>(),
            "minimize_transversal disagrees with the reference"
        );
    }
    let optimized_ns = time_ns(iters, || {
        for t in &transversals {
            black_box(h.minimize_transversal(t));
        }
    });
    let baseline_ns = time_ns(iters, || {
        for t in &ref_transversals {
            black_box(ref_minimize_transversal(&ref_edges, t));
        }
    });
    HotpathMetric {
        name: "minimize-transversal",
        universe: n,
        baseline_ns,
        optimized_ns,
        ops_per_iter: transversals.len(),
    }
}

/// Flattens the cached index's edge rows into a standalone arena copy, so the
/// reference kernels scan the *same* layout and only the loop shape differs.
fn arena_copy(h: &Hypergraph) -> (Vec<u64>, usize) {
    let idx = h.index();
    let wpe = idx.words_per_edge();
    let mut arena = Vec::with_capacity(idx.num_edges() * wpe);
    for i in 0..idx.num_edges() {
        arena.extend_from_slice(idx.edge_words(i));
    }
    (arena, wpe)
}

/// Measures the batched wide-word transversal probe: one `transversal_many`
/// pass over the arena for the whole probe family vs. the pre-wide-word
/// one-full-scan-per-probe zip kernel on the same arena.  Panics if the
/// batched answers disagree with either the reference or the per-probe
/// optimized path.
pub fn measure_wide_transversal_batch(
    h: &Hypergraph,
    probes: &[VertexSet],
    iters: usize,
) -> HotpathMetric {
    let idx = h.index();
    let (arena, wpe) = arena_copy(h);
    let refs: Vec<&VertexSet> = probes.iter().collect();
    let batched = idx.transversal_many(&refs);
    for (t, &got) in probes.iter().zip(&batched) {
        assert_eq!(
            got,
            ref_arena_is_transversal(&arena, wpe, t.as_words()),
            "batched transversal probe disagrees with the pre-wide-word scan"
        );
        assert_eq!(
            got,
            h.is_transversal(t),
            "batched transversal probe disagrees with the per-probe path"
        );
    }
    let optimized_ns = time_ns(iters, || {
        black_box(idx.transversal_many(&refs));
    });
    let baseline_ns = time_ns(iters, || {
        for t in probes {
            black_box(ref_arena_is_transversal(&arena, wpe, t.as_words()));
        }
    });
    HotpathMetric {
        name: "wide-transversal-batch",
        universe: h.num_vertices(),
        baseline_ns,
        optimized_ns,
        ops_per_iter: probes.len(),
    }
}

/// Measures the batched wide-word joint classification: one `classify_many`
/// pass answering both monotone probes per candidate vs. the two separate
/// full-arena zip scans (`is_transversal` + `evaluate_dnf`) the pre-wide-word
/// call sites issued per candidate.  Panics on any disagreement.
pub fn measure_wide_classify_batch(
    h: &Hypergraph,
    probes: &[VertexSet],
    iters: usize,
) -> HotpathMetric {
    let idx = h.index();
    let (arena, wpe) = arena_copy(h);
    let refs: Vec<&VertexSet> = probes.iter().collect();
    let classes = idx.classify_many(&refs);
    assert!(
        classes.iter().any(|c| c.covers_edge),
        "wide classify workload never exercises the covers-edge side"
    );
    for (t, c) in probes.iter().zip(&classes) {
        assert_eq!(
            c.transversal,
            ref_arena_is_transversal(&arena, wpe, t.as_words()),
            "batched classification disagrees with the pre-wide-word transversal scan"
        );
        assert_eq!(
            c.covers_edge,
            ref_arena_evaluate_dnf(&arena, wpe, t.as_words()),
            "batched classification disagrees with the pre-wide-word DNF scan"
        );
    }
    let optimized_ns = time_ns(iters, || {
        black_box(idx.classify_many(&refs));
    });
    let baseline_ns = time_ns(iters, || {
        for t in probes {
            black_box(ref_arena_is_transversal(&arena, wpe, t.as_words()));
            black_box(ref_arena_evaluate_dnf(&arena, wpe, t.as_words()));
        }
    });
    HotpathMetric {
        name: "wide-classify-batch",
        universe: h.num_vertices(),
        baseline_ns,
        optimized_ns,
        ops_per_iter: probes.len(),
    }
}

/// Measures the `full`/`complement`/`lex_cmp` kernels: word-wise vs. per-bit loops.
pub fn measure_set_kernels(n: usize, iters: usize) -> HotpathMetric {
    let sets = sample_sets(n, 40, 0xCAFE ^ n as u64);
    let ref_sets: Vec<RefSet> = sets.iter().map(RefSet::from_set).collect();
    for (s, r) in sets.iter().zip(&ref_sets) {
        assert_eq!(
            s.complement(n).to_indices(),
            r.complement(n).iter().collect::<Vec<_>>()
        );
    }
    for (s, r) in sets.iter().zip(&ref_sets) {
        for (t, q) in sets.iter().zip(&ref_sets) {
            assert_eq!(s.lex_cmp(t), r.lex_cmp(q), "lex_cmp drift at n={n}");
        }
    }
    let optimized_ns = time_ns(iters, || {
        black_box(VertexSet::full(n));
        for s in &sets {
            black_box(s.complement(n));
        }
        for s in &sets {
            for t in &sets {
                black_box(s.lex_cmp(t));
            }
        }
    });
    let baseline_ns = time_ns(iters, || {
        black_box(RefSet::full(n));
        for s in &ref_sets {
            black_box(s.complement(n));
        }
        for s in &ref_sets {
            for t in &ref_sets {
                black_box(s.lex_cmp(t));
            }
        }
    });
    HotpathMetric {
        name: "set-kernels",
        universe: n,
        baseline_ns,
        optimized_ns,
        ops_per_iter: sets.len() * (sets.len() + 2),
    }
}

/// Runs every E12 measurement at the given per-metric iteration count.
pub fn measure_all(iters: usize) -> Vec<HotpathMetric> {
    let small = classify_workload_small();
    let spilled = classify_workload_spilled();
    let (h_small, cand_small) = transversal_workload(48, 40, 0xE12A);
    let (h_spilled, cand_spilled) = transversal_workload(96, 40, 0xE12B);
    let (h_192, probes_192) = wide_workload(192, 2048, 0xE12C);
    let (h_320, probes_320) = wide_workload(320, 3072, 0xE12D);
    let (h_1024, probes_1024) = wide_workload(1024, 8192, 0xE12E);
    let wide_iters = iters.max(1) / 8 + 1;
    vec![
        measure_classify(&small, iters),
        measure_classify(&spilled, iters.max(1) / 4 + 1),
        measure_transversal(&h_small, &cand_small, iters),
        measure_transversal(&h_spilled, &cand_spilled, iters),
        measure_minimize_transversal(&h_small, &cand_small, iters.max(1) / 4 + 1),
        measure_set_kernels(48, iters),
        measure_set_kernels(160, iters),
        measure_wide_transversal_batch(&h_192, &probes_192, wide_iters),
        measure_wide_transversal_batch(&h_1024, &probes_1024, wide_iters),
        measure_wide_classify_batch(&h_320, &probes_320, wide_iters),
        measure_wide_classify_batch(&h_1024, &probes_1024, wide_iters),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_paths_agree_with_optimized_paths() {
        // The measurement helpers assert agreement internally; a single fast
        // iteration exercises all of those checks.
        let metrics = measure_all(1);
        assert_eq!(metrics.len(), 11);
        for m in &metrics {
            assert!(m.baseline_ns >= 0.0 && m.optimized_ns >= 0.0);
            assert!(m.ops_per_iter > 0);
            let json = m.to_json();
            assert!(json.contains("\"speedup\""), "{json}");
        }
        // Inline, spilled, and wide (multi-word) universes are all represented.
        assert!(metrics.iter().any(|m| m.universe <= 64));
        assert!(metrics.iter().any(|m| m.universe > 64));
        assert!(metrics.iter().any(|m| m.universe >= 1024));
    }

    #[test]
    fn wide_reference_kernels_match_the_index_paths() {
        // Small wide instance so the exhaustive cross-check stays fast: every
        // probe must classify identically through the reference zip kernels,
        // the per-probe index paths, and both batched probes.
        let (h, probes) = wide_workload(192, 64, 0x51DE);
        let idx = h.index();
        let (arena, wpe) = arena_copy(&h);
        assert!(wpe >= 3, "wide workload must spill past two words");
        let refs: Vec<&VertexSet> = probes.iter().collect();
        let batched = idx.transversal_many(&refs);
        let classes = idx.classify_many(&refs);
        for ((t, &tv), c) in probes.iter().zip(&batched).zip(&classes) {
            assert_eq!(tv, ref_arena_is_transversal(&arena, wpe, t.as_words()));
            assert_eq!(tv, c.transversal);
            assert_eq!(
                c.covers_edge,
                ref_arena_evaluate_dnf(&arena, wpe, t.as_words())
            );
            assert_eq!(c.covers_edge, h.index().evaluate_dnf(t));
        }
        // Both answers occur in the workload, so the checks are not vacuous.
        assert!(batched.iter().any(|&b| b) && batched.iter().any(|&b| !b));
        assert!(classes.iter().any(|c| c.covers_edge));
    }
}
