//! # qld-harness
//!
//! Experiment harness for the reproduction of Gottlob's *Deciding Monotone Duality …
//! in Quadratic Logspace* (PODS 2013): shared workloads, the experiment tables E2–E9
//! (see `DESIGN.md` and `EXPERIMENTS.md`), and the Figure 1 generator.
//!
//! Binaries:
//!
//! * `experiments` — prints every experiment table (`--exp eN` to select, `--tsv` for
//!   machine-readable output);
//! * `figure1` — regenerates the complexity-class diagram (ASCII or `--dot`).
//!
//! The workspace-level `examples/` and `tests/` directories are attached to this crate,
//! so `cargo run -p qld-harness --example quickstart` and `cargo test -p qld-harness`
//! exercise them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod figure;
pub mod hotpath;
pub mod table;
pub mod workloads;

pub use table::Table;
