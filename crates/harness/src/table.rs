//! Plain-text experiment tables.
//!
//! Every experiment produces a [`Table`]: a titled grid of strings that can be rendered
//! as aligned text (for the console and `EXPERIMENTS.md`) or as TSV (for downstream
//! plotting).  Keeping the type this simple means the experiment code, the Criterion
//! benches and the documentation all consume exactly the same rows.

/// A titled table of strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier (e.g. `"E3"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each row must have exactly `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given identifier, title, and columns.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the number of columns).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} does not match {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&rule.join("  "));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as tab-separated values (with a header line).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Formats a boolean as a compact check mark for table cells.
pub fn mark(ok: bool) -> String {
    if ok {
        "yes".to_string()
    } else {
        "NO".to_string()
    }
}

/// Formats a floating-point value with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a duration in microseconds.
pub fn micros(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new("E0", "demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "23456".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.render();
        assert!(text.contains("## E0 — demo"));
        assert!(text.contains("alpha  1"));
        let tsv = t.to_tsv();
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.starts_with("name\tvalue"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(mark(true), "yes");
        assert_eq!(mark(false), "NO");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(micros(std::time::Duration::from_micros(1500)), "1500.0");
    }
}
