//! Shared workload definitions.
//!
//! The experiment tables (E2–E9), the Criterion benches, and several integration tests
//! all iterate over the same instance families; defining them once here keeps the
//! numbers in `EXPERIMENTS.md` reproducible by `cargo bench` without duplication.

use qld_datamining::BooleanRelation;
use qld_engine::Request;
use qld_hypergraph::generators::{self, LabelledInstance};
use qld_keys::RelationInstance;

/// The dual instances used by the structural experiments (E2, E4) — a mix of all
/// families at laptop-friendly sizes.
pub fn dual_instances() -> Vec<LabelledInstance> {
    vec![
        generators::matching_instance(2),
        generators::matching_instance(3),
        generators::matching_instance(4),
        generators::matching_instance(5),
        generators::threshold_instance(5, 2),
        generators::threshold_instance(6, 3),
        generators::threshold_instance(7, 3),
        generators::graph_cover_instance("C5", generators::cycle_graph(5)),
        generators::graph_cover_instance("C7", generators::cycle_graph(7)),
        generators::graph_cover_instance("K5", generators::complete_graph(5)),
        generators::graph_cover_instance("P7", generators::path_graph(7)),
        generators::self_dual_instance(2),
        generators::self_dual_instance(3),
        generators::random_dual_instance(8, 7, 4, 1),
        generators::random_dual_instance(9, 8, 4, 2),
    ]
}

/// Non-dual instances (perturbed duals) used by E4, E5, E6.
pub fn non_dual_instances() -> Vec<LabelledInstance> {
    dual_instances()
        .iter()
        .enumerate()
        .filter_map(|(i, li)| generators::perturb(li, generators::Perturbation::DropDualEdge, i))
        .collect()
}

/// The growing family used by the space-scaling experiment (E3): matching instances of
/// increasing size (the classical family where the dual side grows exponentially).
/// The boolean flag says whether the faithful recompute strategy is cheap enough to
/// measure on that instance.
pub fn space_scaling_instances() -> Vec<(LabelledInstance, bool)> {
    vec![
        (generators::matching_instance(1), true),
        (generators::matching_instance(2), true),
        (generators::matching_instance(3), true),
        (generators::threshold_instance(5, 2), true),
        (generators::matching_instance(4), false),
        (generators::matching_instance(5), false),
        (generators::matching_instance(6), false),
        (generators::threshold_instance(8, 3), false),
    ]
}

/// Synthetic relations for the data-mining experiment (E7): `(name, relation, threshold)`.
pub fn datamining_workloads() -> Vec<(String, BooleanRelation, usize)> {
    let mut out = Vec::new();
    for (items, rows, density, z, seed) in [
        (6usize, 20usize, 0.55, 4usize, 11u64),
        (8, 30, 0.5, 6, 12),
        (8, 40, 0.65, 12, 13),
        (10, 40, 0.45, 8, 14),
    ] {
        out.push((
            format!("random(items={items},rows={rows},d={density})"),
            qld_datamining::generators::random_relation(items, rows, density, seed),
            z,
        ));
    }
    for (items, rows, patterns, size, z, seed) in [
        (8usize, 40usize, 3usize, 4usize, 8usize, 21u64),
        (10, 60, 4, 5, 12, 22),
    ] {
        out.push((
            format!("planted(items={items},rows={rows},patterns={patterns})"),
            qld_datamining::generators::planted_pattern_relation(
                items, rows, patterns, size, 0.1, seed,
            ),
            z,
        ));
    }
    out
}

/// Relational instances for the key-discovery experiment (E8): `(name, instance)`.
pub fn key_workloads() -> Vec<(String, RelationInstance)> {
    let mut out = Vec::new();
    for (attrs, rows, domain, seed) in [
        (4usize, 8usize, 3u32, 31u64),
        (5, 10, 3, 32),
        (5, 12, 3, 33),
        (6, 12, 4, 34),
        (6, 16, 3, 35),
        (7, 14, 4, 37),
    ] {
        out.push((
            format!("random(attrs={attrs},rows={rows},dom={domain})"),
            qld_keys::generators::random_instance(attrs, rows, domain, seed),
        ));
    }
    out.push((
        "planted-key(attrs=6,rows=14)".to_string(),
        qld_keys::generators::planted_key_instance(6, 14, &[0, 3], 36),
    ));
    out
}

/// Coteries for the non-domination experiment (E9): `(name, coterie)`.
pub fn coterie_workloads() -> Vec<(String, qld_coteries::Coterie)> {
    use qld_coteries::constructions::*;
    vec![
        ("majority(3)".into(), majority_coterie(3)),
        ("majority(5)".into(), majority_coterie(5)),
        ("majority(7)".into(), majority_coterie(7)),
        ("threshold(4,3)".into(), threshold_coterie(4, 3)),
        ("threshold(6,4)".into(), threshold_coterie(6, 4)),
        ("singleton(5)".into(), singleton_coterie(5, 0)),
        ("wheel(5)".into(), wheel_coterie(5)),
        ("wheel(7)".into(), wheel_coterie(7)),
        ("grid(2x2)".into(), grid_coterie(2, 2)),
        ("grid(2x3)".into(), grid_coterie(2, 3)),
        ("grid(3x3)".into(), grid_coterie(3, 3)),
    ]
}

/// A mixed engine batch of at least `min_requests` typed requests (E10 and the
/// engine bench): duality checks (dual and perturbed), limited transversal
/// enumerations, itemset-border identifications, and minimal-key enumerations,
/// all drawn from the workloads above.  Requests cycle deterministically, so
/// batches of any size are reproducible.
pub fn engine_batch(min_requests: usize) -> Vec<Request> {
    let mut base: Vec<Request> = Vec::new();
    for li in dual_instances() {
        base.push(Request::DecideDuality {
            g: li.g.clone(),
            h: li.h.clone(),
        });
    }
    for li in non_dual_instances() {
        base.push(Request::DecideDuality {
            g: li.g.clone(),
            h: li.h.clone(),
        });
    }
    for (i, li) in dual_instances().into_iter().enumerate() {
        base.push(Request::EnumerateTransversals {
            g: li.g,
            limit: Some(2 + i % 5),
        });
    }
    for (_, relation, z) in datamining_workloads() {
        let borders = qld_datamining::borders_exact(&relation, z);
        // one complete- and one incomplete-border identification per relation
        base.push(Request::IdentifyItemsetBorders {
            relation: relation.clone(),
            threshold: z,
            minimal_infrequent: borders.minimal_infrequent.clone(),
            maximal_frequent: borders.maximal_frequent.clone(),
        });
        let mut partial = borders.maximal_frequent.clone();
        if !partial.is_empty() {
            partial.remove_edge(0);
        }
        base.push(Request::IdentifyItemsetBorders {
            relation,
            threshold: z,
            minimal_infrequent: borders.minimal_infrequent,
            maximal_frequent: partial,
        });
    }
    for (_, instance) in key_workloads() {
        base.push(Request::FindMinimalKeys { instance });
    }
    let mut out = Vec::with_capacity(min_requests.max(base.len()));
    while out.len() < min_requests {
        out.extend(base.iter().cloned());
    }
    out
}

/// The engine batch rendered as wire-format request lines (E11 and the serve
/// bench): the text a socket client would send, one request per line,
/// covering all four request kinds.
pub fn engine_wire_lines(min_requests: usize) -> Vec<String> {
    engine_batch(min_requests)
        .iter()
        .map(qld_engine::wire::render_request)
        .collect()
}

/// The classical border-stress relation behind the streaming experiments
/// (E13, the `e13_stream` bench, and the CI cancel smoke): over `2k` items,
/// row `i` is the full universe minus the pair `{2i, 2i+1}`.  At threshold 0
/// the maximal frequent border is the `k` rows themselves and the minimal
/// infrequent border is the `2^k` transversals of the perfect matching — a
/// small relation whose full-border identification runs long and yields
/// many stream items.
pub fn border_stress_relation(pairs: usize) -> BooleanRelation {
    use qld_hypergraph::VertexSet;
    let n = 2 * pairs;
    BooleanRelation::from_rows(
        n,
        (0..pairs)
            .map(|i| VertexSet::from_indices(n, (0..n).filter(|&v| v != 2 * i && v != 2 * i + 1))),
    )
}

/// Streaming workloads (E13 and the `e13_stream` bench): long-running,
/// many-item requests where time-to-first-result is the interesting number.
/// Returns `(name, request)`; every request yields at least a dozen items.
pub fn streaming_workloads() -> Vec<(String, Request)> {
    let mut out = Vec::new();
    for k in [4usize, 5] {
        let li = generators::matching_instance(k);
        out.push((
            format!("enumerate matching({k}) [{} items]", 1usize << k),
            Request::EnumerateTransversals {
                g: li.g,
                limit: None,
            },
        ));
    }
    for pairs in [4usize, 5] {
        let relation = border_stress_relation(pairs);
        let n = relation.num_items();
        out.push((
            format!(
                "mine-full pair-complement({pairs}) [{} items]",
                pairs + (1usize << pairs)
            ),
            Request::MineBorders {
                relation,
                threshold: 0,
                minimal_infrequent: qld_hypergraph::Hypergraph::new(n),
                maximal_frequent: qld_hypergraph::Hypergraph::new(n),
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_lines_round_trip_to_the_same_requests() {
        let requests = engine_batch(40);
        let lines = engine_wire_lines(40);
        assert_eq!(requests.len(), lines.len());
        for (request, line) in requests.iter().zip(&lines) {
            assert_eq!(
                qld_engine::wire::parse_request(line).as_ref(),
                Ok(request),
                "line `{line}` did not round-trip"
            );
        }
    }

    #[test]
    fn engine_batches_mix_all_request_kinds() {
        let batch = engine_batch(100);
        assert!(batch.len() >= 100);
        for kind in ["check", "enumerate", "mine", "keys"] {
            assert!(
                batch.iter().any(|r| r.kind() == kind),
                "missing request kind {kind}"
            );
        }
    }

    #[test]
    fn workload_inventories_are_nonempty_and_consistent() {
        assert!(dual_instances().len() >= 10);
        assert!(dual_instances().iter().all(|li| li.dual));
        assert!(!non_dual_instances().is_empty());
        assert!(non_dual_instances().iter().all(|li| !li.dual));
        assert!(space_scaling_instances().len() >= 6);
        assert!(datamining_workloads().len() >= 5);
        assert!(key_workloads().len() >= 5);
        assert!(coterie_workloads().len() >= 8);
    }

    #[test]
    fn border_stress_relation_has_the_predicted_borders() {
        let pairs = 3;
        let relation = border_stress_relation(pairs);
        assert_eq!(relation.num_items(), 2 * pairs);
        assert_eq!(relation.num_rows(), pairs);
        let exact = qld_datamining::borders_exact(&relation, 0);
        assert_eq!(exact.maximal_frequent.num_edges(), pairs);
        assert_eq!(exact.minimal_infrequent.num_edges(), 1 << pairs);
    }

    #[test]
    fn streaming_workloads_cover_both_streaming_kinds() {
        let workloads = streaming_workloads();
        assert!(workloads.len() >= 3);
        assert!(workloads
            .iter()
            .any(|(_, r)| matches!(r, Request::EnumerateTransversals { .. })));
        assert!(workloads
            .iter()
            .any(|(_, r)| matches!(r, Request::MineBorders { .. })));
    }

    #[test]
    fn datamining_thresholds_are_meaningful() {
        for (name, relation, z) in datamining_workloads() {
            assert!(z < relation.num_rows(), "{name}: z out of range");
            assert!(
                relation.num_items() <= 12,
                "{name}: keep ground truth feasible"
            );
        }
    }
}
