//! Monotone DNF formulas and their correspondence with simple hypergraphs.
//!
//! Section 1 of the paper recalls that DNF duality and hypergraph duality "are actually
//! the same problem": the hypergraph associated with a monotone DNF has one hyperedge
//! per disjunct (the set of variables of that disjunct), and the trivial reductions in
//! both directions preserve duality.  This module provides the formula-side view:
//! construction, irredundancy, evaluation, the semantic duality test
//! `f(x) ≡ ¬g(¬x)` by exhaustive evaluation (for small variable counts), and the
//! conversions.

use crate::hypergraph::Hypergraph;
use crate::vertex::Vertex;
use crate::vset::VertexSet;
use alloc::format;
use alloc::string::String;
use alloc::vec;
use alloc::vec::Vec;
use core::fmt;

/// A monotone DNF formula `t₁ ∨ t₂ ∨ …` where each term `tᵢ` is a conjunction of
/// positive variables, represented as the set of its variable indices.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MonotoneDnf {
    num_vars: usize,
    terms: Vec<VertexSet>,
}

impl MonotoneDnf {
    /// The constant-false formula (no disjuncts) over `num_vars` variables.
    pub fn constant_false(num_vars: usize) -> Self {
        MonotoneDnf {
            num_vars,
            terms: Vec::new(),
        }
    }

    /// The constant-true formula (a single empty disjunct) over `num_vars` variables.
    pub fn constant_true(num_vars: usize) -> Self {
        MonotoneDnf {
            num_vars,
            terms: vec![VertexSet::empty(num_vars)],
        }
    }

    /// Builds a DNF from terms given as variable-index slices.
    pub fn from_terms(num_vars: usize, terms: &[&[usize]]) -> Self {
        MonotoneDnf {
            num_vars,
            terms: terms
                .iter()
                .map(|t| VertexSet::from_indices(num_vars, t.iter().copied()))
                .collect(),
        }
    }

    /// Number of propositional variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The terms (disjuncts) of the formula.
    pub fn terms(&self) -> &[VertexSet] {
        &self.terms
    }

    /// Number of disjuncts.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether no disjunct's variable set is covered by another disjunct's variable set
    /// (the paper's irredundancy condition).
    pub fn is_irredundant(&self) -> bool {
        self.to_hypergraph().is_simple()
    }

    /// Removes redundant (absorbed) disjuncts, yielding the canonical irredundant form.
    pub fn irredundant(&self) -> MonotoneDnf {
        MonotoneDnf {
            num_vars: self.num_vars,
            terms: self.to_hypergraph().minimize().edges().to_vec(),
        }
    }

    /// Evaluates the formula under the assignment `true_vars` (the set of variables set
    /// to 1).
    pub fn evaluate(&self, true_vars: &VertexSet) -> bool {
        self.terms.iter().any(|t| t.is_subset(true_vars))
    }

    /// The hypergraph whose hyperedges are the variable sets of the disjuncts.
    pub fn to_hypergraph(&self) -> Hypergraph {
        Hypergraph::from_edges(self.num_vars, self.terms.iter().cloned())
    }

    /// The monotone DNF associated with a hypergraph (one disjunct per edge).
    pub fn from_hypergraph(h: &Hypergraph) -> MonotoneDnf {
        MonotoneDnf {
            num_vars: h.num_vertices(),
            terms: h.edges().to_vec(),
        }
    }

    /// Semantic duality check by exhaustive evaluation of
    /// `f(x₁,…,xₙ) ≡ ¬g(¬x₁,…,¬xₙ)` over all `2ⁿ` assignments.
    ///
    /// Panics if the number of variables exceeds 24 (use the algorithmic solvers for
    /// larger instances).
    pub fn is_dual_semantic(&self, g: &MonotoneDnf) -> bool {
        let n = self.num_vars.max(g.num_vars);
        assert!(n <= 24, "semantic duality check limited to 24 variables");
        // Both formulas are evaluated 2ⁿ times: build their term indexes once and
        // construct each assignment straight from the enumeration mask.
        let f_hg = self.to_hypergraph();
        let g_hg = g.to_hypergraph();
        let (f_idx, g_idx) = (f_hg.index(), g_hg.index());
        for x in VertexSet::all_subsets(n) {
            let not_x = x.complement(n);
            if f_idx.evaluate_dnf(&x) == g_idx.evaluate_dnf(&not_x) {
                return false;
            }
        }
        true
    }

    /// Computes the dual formula explicitly (by dualizing the associated hypergraph).
    pub fn dual(&self) -> MonotoneDnf {
        let tr = crate::transversal::minimal_transversals(&self.to_hypergraph().minimize());
        MonotoneDnf::from_hypergraph(&tr)
    }

    /// Parses a formula from a compact text form such as `"x0 x1 | x2 x3"`.
    ///
    /// Terms are separated by `|`; variables are `x<i>` or bare indices, separated by
    /// whitespace or `&`.  An empty string denotes the constant-false formula and the
    /// string `"true"` the constant-true one.
    pub fn parse(text: &str) -> Result<MonotoneDnf, crate::error::HypergraphError> {
        let text = text.trim();
        if text.is_empty() {
            return Ok(MonotoneDnf::constant_false(0));
        }
        if text == "true" {
            return Ok(MonotoneDnf::constant_true(0));
        }
        let mut terms: Vec<Vec<usize>> = Vec::new();
        for (ti, term_text) in text.split('|').enumerate() {
            let mut vars = Vec::new();
            for token in term_text.split(|c: char| c.is_whitespace() || c == '&') {
                let token = token.trim();
                if token.is_empty() {
                    continue;
                }
                let idx_text = token.strip_prefix('x').unwrap_or(token);
                let idx: usize =
                    idx_text
                        .parse()
                        .map_err(|_| crate::error::HypergraphError::Parse {
                            line: ti + 1,
                            message: format!("invalid variable token `{token}`"),
                        })?;
                vars.push(idx);
            }
            terms.push(vars);
        }
        let num_vars = terms
            .iter()
            .flat_map(|t| t.iter())
            .map(|&i| i + 1)
            .max()
            .unwrap_or(0);
        Ok(MonotoneDnf {
            num_vars,
            terms: terms
                .into_iter()
                .map(|t| VertexSet::from_indices(num_vars, t))
                .collect(),
        })
    }
}

impl fmt::Display for MonotoneDnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "false");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            if t.is_empty() {
                write!(f, "true")?;
            } else {
                let vars: Vec<String> = t.iter().map(|v: Vertex| format!("x{}", v.0)).collect();
                write!(f, "{}", vars.join(" "))?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for MonotoneDnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MonotoneDnf({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vset;

    #[test]
    fn evaluation_is_monotone() {
        let f = MonotoneDnf::from_terms(3, &[&[0, 1], &[2]]);
        assert!(f.evaluate(&vset![3; 0, 1]));
        assert!(f.evaluate(&vset![3; 2]));
        assert!(f.evaluate(&vset![3; 0, 1, 2]));
        assert!(!f.evaluate(&vset![3; 0]));
        assert!(!f.evaluate(&vset![3;]));
    }

    #[test]
    fn constants() {
        let t = MonotoneDnf::constant_true(3);
        let f = MonotoneDnf::constant_false(3);
        assert!(t.evaluate(&vset![3;]));
        assert!(!f.evaluate(&vset![3; 0, 1, 2]));
        // The constant-true and constant-false formulas are mutually dual.
        assert!(t.is_dual_semantic(&f));
        assert!(f.is_dual_semantic(&t));
    }

    #[test]
    fn irredundancy() {
        let f = MonotoneDnf::from_terms(3, &[&[0], &[0, 1]]);
        assert!(!f.is_irredundant());
        let g = f.irredundant();
        assert!(g.is_irredundant());
        assert_eq!(g.num_terms(), 1);
        assert_eq!(g.terms()[0], vset![3; 0]);
    }

    #[test]
    fn semantic_duality_triangle() {
        // x0x1 | x1x2 | x0x2 is self-dual.
        let f = MonotoneDnf::from_terms(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert!(f.is_dual_semantic(&f));
        // x0 | x1 is dual to x0x1
        let a = MonotoneDnf::from_terms(2, &[&[0], &[1]]);
        let b = MonotoneDnf::from_terms(2, &[&[0, 1]]);
        assert!(a.is_dual_semantic(&b));
        assert!(!a.is_dual_semantic(&a));
    }

    #[test]
    fn explicit_dual_matches_semantic_duality() {
        let f = MonotoneDnf::from_terms(4, &[&[0, 1], &[2, 3]]);
        let d = f.dual();
        assert_eq!(d.num_terms(), 4);
        assert!(f.is_dual_semantic(&d));
        // And duality is an involution (up to term order).
        let dd = d.dual();
        assert!(dd.to_hypergraph().same_edge_set(&f.to_hypergraph()));
    }

    #[test]
    fn hypergraph_round_trip() {
        let f = MonotoneDnf::from_terms(5, &[&[0, 4], &[1, 2, 3]]);
        let h = f.to_hypergraph();
        assert_eq!(h.num_edges(), 2);
        let back = MonotoneDnf::from_hypergraph(&h);
        assert_eq!(back, f);
    }

    #[test]
    fn parse_and_display() {
        let f = MonotoneDnf::parse("x0 x1 | x2").unwrap();
        assert_eq!(f.num_terms(), 2);
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.to_string(), "x0 x1 | x2");
        let g = MonotoneDnf::parse("0 & 1 | 2").unwrap();
        assert_eq!(g, f);
        assert_eq!(MonotoneDnf::parse("").unwrap().num_terms(), 0);
        assert_eq!(MonotoneDnf::parse("true").unwrap().num_terms(), 1);
        assert_eq!(MonotoneDnf::constant_false(2).to_string(), "false");
        assert!(MonotoneDnf::parse("x0 xa | x2").is_err());
    }

    #[test]
    fn display_of_constant_true_term() {
        let t = MonotoneDnf::constant_true(0);
        assert_eq!(t.to_string(), "true");
    }
}
