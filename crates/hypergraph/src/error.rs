//! Error types for hypergraph validation.

use alloc::string::String;
use core::fmt;

/// Errors produced while validating hypergraphs and DNFs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypergraphError {
    /// The hypergraph is not simple: edge `contained` is a subset of edge `container`.
    NotSimple {
        /// Index of the edge that is contained in another one.
        contained: usize,
        /// Index of the containing edge.
        container: usize,
    },
    /// A textual representation could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An operation required a non-empty hypergraph.
    Empty,
    /// A vertex index exceeded the declared universe.
    VertexOutOfRange {
        /// The out-of-range vertex index.
        vertex: usize,
        /// The declared universe size.
        universe: usize,
    },
}

impl fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypergraphError::NotSimple {
                contained,
                container,
            } => write!(
                f,
                "hypergraph is not simple: edge #{contained} is contained in edge #{container}"
            ),
            HypergraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            HypergraphError::Empty => write!(f, "operation requires a non-empty hypergraph"),
            HypergraphError::VertexOutOfRange { vertex, universe } => write!(
                f,
                "vertex {vertex} out of range for universe of size {universe}"
            ),
        }
    }
}

impl core::error::Error for HypergraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = HypergraphError::NotSimple {
            contained: 1,
            container: 2,
        };
        assert!(e.to_string().contains("edge #1"));
        let p = HypergraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 3"));
        assert!(HypergraphError::Empty.to_string().contains("non-empty"));
        let v = HypergraphError::VertexOutOfRange {
            vertex: 9,
            universe: 4,
        };
        assert!(v.to_string().contains("vertex 9"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: core::error::Error>() {}
        assert_err::<HypergraphError>();
    }
}
