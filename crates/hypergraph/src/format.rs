//! Plain-text serialization of hypergraphs.
//!
//! The format is line-oriented and intentionally trivial so that instances can be
//! pasted into examples, stored next to experiment outputs, and diffed:
//!
//! ```text
//! # n=4 m=2        (optional header; `n` fixes the universe size)
//! 0 1              (one edge per line: whitespace-separated vertex indices)
//! 2 3
//! ```
//!
//! Blank lines and lines starting with `#` (other than the header) are ignored.

use crate::error::HypergraphError;
use crate::hypergraph::Hypergraph;
use crate::vset::VertexSet;
use alloc::format;
use alloc::string::{String, ToString};
use alloc::vec::Vec;

/// Serializes a hypergraph into the line-oriented text format.
pub fn to_text(h: &Hypergraph) -> String {
    h.to_string()
}

/// Parses a hypergraph from the line-oriented text format.
pub fn from_text(text: &str) -> Result<Hypergraph, HypergraphError> {
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<Vec<usize>> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            // Header of the form `# n=<N> m=<M>`; other comments are skipped.
            for token in rest.split_whitespace() {
                if let Some(v) = token.strip_prefix("n=") {
                    declared_n = v.parse().ok();
                }
            }
            continue;
        }
        let mut edge = Vec::new();
        for token in line.split_whitespace() {
            let idx: usize = token.parse().map_err(|_| HypergraphError::Parse {
                line: lineno + 1,
                message: format!("invalid vertex index `{token}`"),
            })?;
            edge.push(idx);
        }
        edges.push(edge);
    }
    let needed_n = edges
        .iter()
        .flat_map(|e| e.iter())
        .map(|&i| i + 1)
        .max()
        .unwrap_or(0);
    let n = match declared_n {
        Some(n) if n >= needed_n => n,
        Some(n) => {
            return Err(HypergraphError::VertexOutOfRange {
                vertex: needed_n - 1,
                universe: n,
            })
        }
        None => needed_n,
    };
    let mut hg = Hypergraph::new(n);
    for e in edges {
        hg.add_edge(VertexSet::from_indices(n, e));
    }
    Ok(hg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vset;

    #[test]
    fn round_trip() {
        let h = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let text = to_text(&h);
        let back = from_text(&text).unwrap();
        assert_eq!(back.num_vertices(), 4);
        assert!(back.same_edge_set(&h));
    }

    #[test]
    fn parses_without_header_and_with_comments() {
        let h = from_text("\n# just a comment\n0 2\n\n1 3 4\n").unwrap();
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_edges(), 2);
        assert!(h.contains_edge(&vset![5; 0, 2]));
        assert!(h.contains_edge(&vset![5; 1, 3, 4]));
    }

    #[test]
    fn header_universe_larger_than_edges() {
        let h = from_text("# n=10 m=1\n0 1\n").unwrap();
        assert_eq!(h.num_vertices(), 10);
    }

    #[test]
    fn errors() {
        assert!(matches!(
            from_text("0 x\n"),
            Err(HypergraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_text("# n=2\n0 5\n"),
            Err(HypergraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_input_gives_empty_hypergraph() {
        let h = from_text("").unwrap();
        assert_eq!(h.num_edges(), 0);
        assert_eq!(h.num_vertices(), 0);
    }
}
