//! Instance generators: hypergraph families with analytically known duals, random
//! instances, and controlled perturbations that break duality.
//!
//! The paper contains no data sets; all experiments in this repository run on the
//! families below (see DESIGN.md, "Substitutions").  Each generator documents what the
//! dual is and why, so tests can cross-check against the exact dualizer.

use crate::hypergraph::Hypergraph;
use crate::transversal::minimal_transversals;
use crate::vertex::Vertex;
use crate::vset::VertexSet;
use alloc::format;
use alloc::string::String;
use alloc::vec::Vec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A pair of hypergraphs `(g, h)` that is known (by construction) to be dual or
/// non-dual; the flag records which.
#[derive(Debug, Clone)]
pub struct LabelledInstance {
    /// First hypergraph (the "G" of a `DUAL` instance).
    pub g: Hypergraph,
    /// Second hypergraph (the "H" of a `DUAL` instance).
    pub h: Hypergraph,
    /// Whether `h = tr(g)` holds by construction.
    pub dual: bool,
    /// Human-readable name used in experiment tables.
    pub name: String,
}

impl LabelledInstance {
    fn new(name: impl Into<String>, g: Hypergraph, h: Hypergraph, dual: bool) -> Self {
        LabelledInstance {
            g,
            h,
            dual,
            name: name.into(),
        }
    }

    /// Combined encoding size in bits (`|G| + |H|` edges times the universe), the `n`
    /// that space bounds are expressed in.
    pub fn encoding_bits(&self) -> usize {
        self.g.encoding_bits() + self.h.encoding_bits()
    }
}

/// The matching hypergraph `M(k)`: `k` disjoint pairs `{2i, 2i+1}`.
///
/// Its dual consists of the `2^k` sets picking exactly one vertex from each pair — the
/// classical family on which the output of dualization is exponential in the input.
pub fn matching_hypergraph(k: usize) -> Hypergraph {
    let n = 2 * k;
    let edges = (0..k).map(|i| VertexSet::from_indices(n, [2 * i, 2 * i + 1]));
    Hypergraph::from_edges(n, edges)
}

/// The dual of [`matching_hypergraph`]: all `2^k` "one-from-each-pair" selections.
pub fn matching_dual(k: usize) -> Hypergraph {
    let n = 2 * k;
    let mut edges = Vec::with_capacity(1 << k);
    for mask in 0u64..(1u64 << k) {
        let sel = (0..k).map(|i| 2 * i + ((mask >> i) & 1) as usize);
        edges.push(VertexSet::from_indices(n, sel));
    }
    Hypergraph::from_edges(n, edges)
}

/// The `M(k)` instance as a labelled dual pair.
pub fn matching_instance(k: usize) -> LabelledInstance {
    LabelledInstance::new(
        format!("matching(k={k})"),
        matching_hypergraph(k),
        matching_dual(k),
        true,
    )
}

/// The threshold hypergraph `TH(n, k)`: all `k`-element subsets of `{0,…,n-1}`.
///
/// Its dual is `TH(n, n-k+1)`: a set is a minimal transversal of the `k`-subsets iff it
/// has exactly `n-k+1` elements.
pub fn threshold_hypergraph(n: usize, k: usize) -> Hypergraph {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let mut edges = Vec::new();
    let mut current: Vec<usize> = (0..k).collect();
    loop {
        edges.push(VertexSet::from_indices(n, current.iter().copied()));
        // next k-combination in lexicographic order
        let mut i = k;
        loop {
            if i == 0 {
                return Hypergraph::from_edges(n, edges);
            }
            i -= 1;
            if current[i] != i + n - k {
                current[i] += 1;
                for j in i + 1..k {
                    current[j] = current[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// The threshold instance `(TH(n,k), TH(n, n-k+1))` as a labelled dual pair.
pub fn threshold_instance(n: usize, k: usize) -> LabelledInstance {
    LabelledInstance::new(
        format!("threshold(n={n},k={k})"),
        threshold_hypergraph(n, k),
        threshold_hypergraph(n, n - k + 1),
        true,
    )
}

/// The edge hypergraph of the cycle `C_n` (vertices `0..n`, edges `{i, i+1 mod n}`).
pub fn cycle_graph(n: usize) -> Hypergraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let edges = (0..n).map(|i| VertexSet::from_indices(n, [i, (i + 1) % n]));
    Hypergraph::from_edges(n, edges)
}

/// The edge hypergraph of the path `P_n` (vertices `0..n`, edges `{i, i+1}`).
pub fn path_graph(n: usize) -> Hypergraph {
    assert!(n >= 2, "path needs at least 2 vertices");
    let edges = (0..n - 1).map(|i| VertexSet::from_indices(n, [i, i + 1]));
    Hypergraph::from_edges(n, edges)
}

/// The edge hypergraph of the complete graph `K_n`.
pub fn complete_graph(n: usize) -> Hypergraph {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            edges.push(VertexSet::from_indices(n, [i, j]));
        }
    }
    Hypergraph::from_edges(n, edges)
}

/// A graph instance `(edges of the graph, its minimal vertex covers)`, dual by
/// definition of vertex covers; the dual side is computed exactly.
pub fn graph_cover_instance(name: &str, graph: Hypergraph) -> LabelledInstance {
    let covers = minimal_transversals(&graph);
    LabelledInstance::new(format!("graph-cover({name})"), graph, covers, true)
}

/// A self-dual hypergraph built from a dual pair `(a, b)` over a universe `V` by the
/// classical construction: over `V ∪ {p, q}` take
/// `{ {p, q} } ∪ { A ∪ {p} | A ∈ a } ∪ { B ∪ {q} | B ∈ b }`.
///
/// The result is self-dual (`tr(S) = S`) precisely because `a` and `b` are dual.
pub fn self_dual_from_pair(a: &Hypergraph, b: &Hypergraph) -> Hypergraph {
    let n = a.num_vertices().max(b.num_vertices());
    let p = n;
    let q = n + 1;
    let total = n + 2;
    let mut edges = Vec::new();
    edges.push(VertexSet::from_indices(total, [p, q]));
    for e in a.edges() {
        let mut ne = VertexSet::from_indices(total, e.iter().map(|v: Vertex| v.index()));
        ne.insert(Vertex::from(p));
        edges.push(ne);
    }
    for e in b.edges() {
        let mut ne = VertexSet::from_indices(total, e.iter().map(|v: Vertex| v.index()));
        ne.insert(Vertex::from(q));
        edges.push(ne);
    }
    Hypergraph::from_edges(total, edges)
}

/// A self-dual instance `(S, S)` derived from the matching family.
pub fn self_dual_instance(k: usize) -> LabelledInstance {
    let s = self_dual_from_pair(&matching_hypergraph(k), &matching_dual(k));
    LabelledInstance::new(format!("self-dual(k={k})"), s.clone(), s, true)
}

/// A random simple hypergraph with `m` edges over `n` vertices, edge sizes drawn
/// uniformly from `size_range`.  The result is minimized, so it may have fewer than `m`
/// edges.
pub fn random_simple_hypergraph(
    n: usize,
    m: usize,
    size_range: core::ops::RangeInclusive<usize>,
    seed: u64,
) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<VertexSet> = Vec::new();
    let max_attempts = m * 20 + 50;
    let mut attempts = 0;
    while edges.len() < m && attempts < max_attempts {
        attempts += 1;
        let size = rng.gen_range(size_range.clone()).clamp(1, n);
        let mut e = VertexSet::empty(n);
        while e.len() < size {
            e.insert(Vertex::from(rng.gen_range(0..n)));
        }
        edges.push(e);
    }
    Hypergraph::from_edges(n, edges).minimize()
}

/// A random **dual pair**: a random simple hypergraph together with its exact dual
/// (computed by Berge multiplication — keep `n` and `m` moderate).
pub fn random_dual_instance(n: usize, m: usize, max_edge: usize, seed: u64) -> LabelledInstance {
    let g = random_simple_hypergraph(n, m, 2..=max_edge.max(2), seed);
    let h = minimal_transversals(&g);
    LabelledInstance::new(format!("random-dual(n={n},m={m},seed={seed})"), g, h, true)
}

/// Ways of perturbing a dual pair into a non-dual instance while keeping the instance
/// well-formed (both hypergraphs simple, `H ⊆ tr(G)` preserved where stated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// Remove one edge from `H`; `H ⊊ tr(G)`, so a new transversal exists.
    DropDualEdge,
    /// Remove one edge from `G`; generally breaks `G ⊆ tr(H)` (detected by the
    /// precondition check) or duality.
    DropPrimalEdge,
}

/// Applies a perturbation to a known-dual pair, producing a labelled **non-dual**
/// instance.  Returns `None` if the perturbation is not applicable (e.g. the side to
/// drop from has at most one edge).
pub fn perturb(
    instance: &LabelledInstance,
    p: Perturbation,
    which: usize,
) -> Option<LabelledInstance> {
    match p {
        Perturbation::DropDualEdge => {
            if instance.h.num_edges() <= 1 {
                return None;
            }
            let mut h = instance.h.clone();
            h.remove_edge(which % h.num_edges());
            Some(LabelledInstance::new(
                format!("{}-dropH#{which}", instance.name),
                instance.g.clone(),
                h,
                false,
            ))
        }
        Perturbation::DropPrimalEdge => {
            if instance.g.num_edges() <= 1 {
                return None;
            }
            let mut g = instance.g.clone();
            g.remove_edge(which % g.num_edges());
            Some(LabelledInstance::new(
                format!("{}-dropG#{which}", instance.name),
                g,
                instance.h.clone(),
                false,
            ))
        }
    }
}

/// The standard small corpus used by integration tests and the experiment harness:
/// a mix of dual and non-dual instances across all families, capped at sizes where the
/// exact baseline can confirm the labels.
pub fn standard_corpus() -> Vec<LabelledInstance> {
    let mut out = Vec::new();
    for k in 1..=5 {
        out.push(matching_instance(k));
    }
    for (n, k) in [(4, 2), (5, 2), (5, 3), (6, 3), (7, 3)] {
        out.push(threshold_instance(n, k));
    }
    out.push(graph_cover_instance("C5", cycle_graph(5)));
    out.push(graph_cover_instance("C7", cycle_graph(7)));
    out.push(graph_cover_instance("P6", path_graph(6)));
    out.push(graph_cover_instance("K4", complete_graph(4)));
    out.push(graph_cover_instance("K5", complete_graph(5)));
    for k in 1..=3 {
        out.push(self_dual_instance(k));
    }
    for seed in 0..4 {
        out.push(random_dual_instance(7, 6, 4, seed));
    }
    // Non-dual perturbations of a representative subset.
    let duals: Vec<LabelledInstance> = out.clone();
    for (i, inst) in duals.iter().enumerate() {
        if let Some(p) = perturb(inst, Perturbation::DropDualEdge, i) {
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transversal::are_dual_exact;

    #[test]
    fn matching_family_is_dual() {
        for k in 1..=4 {
            let inst = matching_instance(k);
            assert_eq!(inst.g.num_edges(), k);
            assert_eq!(inst.h.num_edges(), 1 << k);
            assert!(inst.g.is_simple());
            assert!(inst.h.is_simple());
            assert!(are_dual_exact(&inst.h, &inst.g), "k={k}");
        }
    }

    #[test]
    fn threshold_family_is_dual() {
        for (n, k) in [(3, 2), (4, 2), (5, 3), (6, 2)] {
            let inst = threshold_instance(n, k);
            assert!(are_dual_exact(&inst.h, &inst.g), "n={n} k={k}");
        }
    }

    #[test]
    fn threshold_counts_binomials() {
        let h = threshold_hypergraph(5, 2);
        assert_eq!(h.num_edges(), 10);
        let h = threshold_hypergraph(6, 3);
        assert_eq!(h.num_edges(), 20);
        let h = threshold_hypergraph(4, 4);
        assert_eq!(h.num_edges(), 1);
        let h = threshold_hypergraph(4, 1);
        assert_eq!(h.num_edges(), 4);
    }

    #[test]
    fn graph_families_shapes() {
        assert_eq!(cycle_graph(5).num_edges(), 5);
        assert_eq!(path_graph(5).num_edges(), 4);
        assert_eq!(complete_graph(5).num_edges(), 10);
        assert!(cycle_graph(6).is_simple());
        let inst = graph_cover_instance("C5", cycle_graph(5));
        assert!(inst.dual);
        assert!(are_dual_exact(&inst.h, &inst.g));
    }

    #[test]
    fn self_dual_construction_is_self_dual() {
        for k in 1..=3 {
            let inst = self_dual_instance(k);
            assert!(inst.g.same_edge_set(&inst.h));
            assert!(are_dual_exact(&inst.g, &inst.h), "k={k}");
        }
    }

    #[test]
    fn random_hypergraphs_are_simple_and_deterministic() {
        let a = random_simple_hypergraph(10, 8, 2..=4, 42);
        let b = random_simple_hypergraph(10, 8, 2..=4, 42);
        assert_eq!(a.canonicalized().edges(), b.canonicalized().edges());
        assert!(a.is_simple());
        let c = random_simple_hypergraph(10, 8, 2..=4, 43);
        // a different seed produces a different hypergraph (deterministically,
        // for these fixed parameters)
        assert!(!a.same_edge_set(&c));
    }

    #[test]
    fn random_dual_instances_verify() {
        for seed in 0..3 {
            let inst = random_dual_instance(6, 5, 3, seed);
            assert!(are_dual_exact(&inst.h, &inst.g), "seed={seed}");
        }
    }

    #[test]
    fn perturbations_break_duality() {
        let inst = matching_instance(3);
        let broken = perturb(&inst, Perturbation::DropDualEdge, 1).unwrap();
        assert!(!broken.dual);
        assert!(!are_dual_exact(&broken.h, &broken.g));
        let broken_g = perturb(&inst, Perturbation::DropPrimalEdge, 0).unwrap();
        assert!(!are_dual_exact(&broken_g.h, &broken_g.g));
        // Not applicable when only one edge remains.
        let tiny = matching_instance(1);
        assert!(perturb(&tiny, Perturbation::DropPrimalEdge, 0).is_none());
    }

    #[test]
    fn corpus_labels_are_correct() {
        for inst in standard_corpus() {
            assert_eq!(
                are_dual_exact(&inst.h, &inst.g),
                inst.dual,
                "label mismatch for {}",
                inst.name
            );
            assert!(inst.encoding_bits() > 0);
        }
    }
}
