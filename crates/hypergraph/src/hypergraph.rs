//! Finite hypergraphs over a dense vertex universe.

use crate::error::HypergraphError;
use crate::index::HypergraphIndex;
use crate::vertex::Vertex;
use crate::vset::VertexSet;
use alloc::boxed::Box;
use alloc::string::{String, ToString};
use alloc::vec;
use alloc::vec::Vec;
use core::fmt;
use oncecell::OnceCell;

/// A finite hypergraph: a family of hyperedges (vertex sets) over the universe
/// `{0, …, num_vertices-1}`.
///
/// Following the paper, a hypergraph is *simple* if no hyperedge is contained in another
/// one; the hypergraph of an irredundant monotone DNF is always simple.  Edges keep the
/// order in which they were added — the deterministic tie-breaking rules of the
/// Boros–Makino decomposition ("lexicographically first edge", "smallest `i`") are
/// resolved against a canonically sorted copy where required, while plain input order is
/// used for child enumeration (documented in `qld-core`).
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Hypergraph {
    num_vertices: usize,
    edges: Vec<VertexSet>,
    /// Lazily built query index (arena + incidence lists, see [`HypergraphIndex`]).
    /// Not part of the hypergraph's value: cloning, comparing, and hashing ignore it,
    /// and any mutation resets it.  Boxed so an unbuilt cache costs one pointer, not
    /// an inline index struct, in every `Hypergraph` move.
    index: OnceCell<Box<HypergraphIndex>>,
}

impl Clone for Hypergraph {
    /// Clones the edge family; the index cache is not carried over (clones are often
    /// mutated next, and the clone rebuilds it on first query if needed).
    fn clone(&self) -> Self {
        Hypergraph {
            num_vertices: self.num_vertices,
            edges: self.edges.clone(),
            index: OnceCell::new(),
        }
    }
}

impl PartialEq for Hypergraph {
    fn eq(&self, other: &Self) -> bool {
        self.num_vertices == other.num_vertices && self.edges == other.edges
    }
}

impl Eq for Hypergraph {}

impl core::hash::Hash for Hypergraph {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.num_vertices.hash(state);
        self.edges.hash(state);
    }
}

impl Hypergraph {
    /// Creates a hypergraph with no edges over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Hypergraph {
            num_vertices,
            edges: Vec::new(),
            index: OnceCell::new(),
        }
    }

    /// Creates a hypergraph from explicit edges.
    ///
    /// Each edge must fit within the universe; edges are *not* deduplicated or minimized
    /// here (call [`Hypergraph::minimize`] for that).
    pub fn from_edges<I>(num_vertices: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = VertexSet>,
    {
        let mut hg = Hypergraph::new(num_vertices);
        for e in edges {
            hg.add_edge(e);
        }
        hg
    }

    /// Creates a hypergraph from edges given as index slices, e.g.
    /// `Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]])`.
    pub fn from_index_edges(num_vertices: usize, edges: &[&[usize]]) -> Self {
        let mut hg = Hypergraph::new(num_vertices);
        for e in edges {
            hg.add_edge(VertexSet::from_indices(num_vertices, e.iter().copied()));
        }
        hg
    }

    /// Number of vertices in the universe.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of hyperedges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the hypergraph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Total number of vertex occurrences across all edges (the "volume" `Σ|E|`).
    pub fn volume(&self) -> usize {
        self.edges.iter().map(|e| e.len()).sum()
    }

    /// The size in bits of the natural bitmap encoding of the hypergraph
    /// (`num_edges × num_vertices`), used as the input-size `n` of space bounds.
    pub fn encoding_bits(&self) -> usize {
        self.num_edges() * self.num_vertices.max(1)
    }

    /// The edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[VertexSet] {
        &self.edges
    }

    /// The `i`-th edge.
    #[inline]
    pub fn edge(&self, i: usize) -> &VertexSet {
        &self.edges[i]
    }

    /// Internal constructor for derived hypergraphs (restrictions, minimizations, …)
    /// whose edges are already over the right universe.
    fn from_edge_vec(num_vertices: usize, edges: Vec<VertexSet>) -> Self {
        Hypergraph {
            num_vertices,
            edges,
            index: OnceCell::new(),
        }
    }

    /// The lazily built [`HypergraphIndex`] of this edge family (arena of edge words,
    /// per-vertex incidence lists, cached edge sizes).  Built on first use and cached
    /// until the hypergraph is mutated; repeated-query hot paths (transversal checks,
    /// DNF evaluation, [`Hypergraph::edges_containing`]) all route through it.
    #[inline]
    pub fn index(&self) -> &HypergraphIndex {
        self.index
            .get_or_init(|| Box::new(HypergraphIndex::build(self.num_vertices, &self.edges)))
    }

    /// Ids of the edges containing vertex `v`, in input edge order (served by the
    /// cached [`HypergraphIndex`]).
    #[inline]
    pub fn edges_containing(&self, v: Vertex) -> &[u32] {
        self.index().edges_containing(v)
    }

    /// Adds an edge.  The universe grows automatically if the edge mentions a larger
    /// vertex than any seen so far.
    pub fn add_edge(&mut self, mut edge: VertexSet) {
        if let Some(max) = edge.max_vertex() {
            if max.index() >= self.num_vertices {
                self.num_vertices = max.index() + 1;
            }
        }
        edge.grow(self.num_vertices);
        // Keep previously added edges compatible with the (possibly) larger universe.
        for e in &mut self.edges {
            e.grow(self.num_vertices);
        }
        self.edges.push(edge);
        self.index = OnceCell::new();
    }

    /// Whether `edge` occurs in the hypergraph (as a set).
    pub fn contains_edge(&self, edge: &VertexSet) -> bool {
        self.edges.iter().any(|e| e == edge)
    }

    /// The set of vertices that occur in at least one edge, `⋃ E`.
    pub fn support(&self) -> VertexSet {
        let mut s = VertexSet::empty(self.num_vertices);
        for e in &self.edges {
            s.union_with(e);
        }
        s
    }

    /// Whether some edge is the empty set.
    pub fn has_empty_edge(&self) -> bool {
        self.edges.iter().any(|e| e.is_empty())
    }

    /// Whether no hyperedge is contained in another (and there are no duplicates).
    ///
    /// This is the "simple hypergraph" / "irredundant DNF" condition of the paper.
    pub fn is_simple(&self) -> bool {
        for (i, a) in self.edges.iter().enumerate() {
            for (j, b) in self.edges.iter().enumerate() {
                if i != j && a.is_subset(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Validates simplicity, returning a typed error naming the offending pair.
    pub fn check_simple(&self) -> Result<(), HypergraphError> {
        for (i, a) in self.edges.iter().enumerate() {
            for (j, b) in self.edges.iter().enumerate() {
                if i != j && a.is_subset(b) {
                    return Err(HypergraphError::NotSimple {
                        contained: i,
                        container: j,
                    });
                }
            }
        }
        Ok(())
    }

    /// Returns the *minimization* of the hypergraph: inclusion-minimal edges only, with
    /// duplicates removed, in first-occurrence order.  (`min(H)` in the literature.)
    pub fn minimize(&self) -> Hypergraph {
        let mut keep: Vec<VertexSet> = Vec::new();
        'outer: for e in &self.edges {
            let mut i = 0;
            while i < keep.len() {
                if keep[i].is_subset(e) {
                    // An already kept edge is ⊆ e: e is redundant (also covers equality).
                    continue 'outer;
                }
                if e.is_subset(&keep[i]) {
                    keep.remove(i);
                } else {
                    i += 1;
                }
            }
            keep.push(e.clone());
        }
        Hypergraph::from_edge_vec(self.num_vertices, keep)
    }

    /// Returns a copy with edges sorted lexicographically (a canonical form useful for
    /// comparisons in tests and the experiment harness).
    pub fn canonicalized(&self) -> Hypergraph {
        let mut edges = self.edges.clone();
        edges.sort();
        edges.dedup();
        Hypergraph::from_edge_vec(self.num_vertices, edges)
    }

    /// Set-equality of edge families (ignoring order and duplicates).
    pub fn same_edge_set(&self, other: &Hypergraph) -> bool {
        self.canonicalized().edges == other.canonicalized().edges
    }

    /// Whether `t` is a transversal: it meets every hyperedge.
    ///
    /// Note the standard convention: if the hypergraph has an empty edge, nothing is a
    /// transversal; if it has no edges at all, every set (including `∅`) is one.
    pub fn is_transversal(&self, t: &VertexSet) -> bool {
        self.index().is_transversal(t)
    }

    /// Whether `t` is a *minimal* transversal: a transversal such that removing any
    /// element destroys the property.
    pub fn is_minimal_transversal(&self, t: &VertexSet) -> bool {
        if !self.is_transversal(t) {
            return false;
        }
        for v in t.iter() {
            if self.is_transversal(&t.without(v)) {
                return false;
            }
        }
        true
    }

    /// Whether `t` is a *new transversal with respect to `h`* (Section 1 of the paper):
    /// a transversal of `self` that contains no hyperedge of `h` as a subset.
    pub fn is_new_transversal(&self, h: &Hypergraph, t: &VertexSet) -> bool {
        // "contains no edge of h" is exactly h's monotone DNF evaluating to false on t.
        self.is_transversal(t) && !h.index().evaluate_dnf(t)
    }

    /// Reduces a transversal `t` of `self` to a minimal transversal by greedily removing
    /// vertices (in increasing order) whose removal keeps `t` a transversal.
    ///
    /// Panics in debug builds if `t` is not a transversal to begin with.
    pub fn minimize_transversal(&self, t: &VertexSet) -> VertexSet {
        debug_assert!(self.is_transversal(t), "input is not a transversal");
        let mut current = t.clone();
        for v in t.iter() {
            let candidate = current.without(v);
            if self.is_transversal(&candidate) {
                current = candidate;
            }
        }
        current
    }

    /// The restriction `G_S = { E ∩ S | E ∈ G }` used by the decomposition (Section 2).
    ///
    /// Duplicates arising from the intersection are removed (the result is a family of
    /// sets); the result is *not* minimized, matching the paper's definition.
    pub fn restrict_intersections(&self, s: &VertexSet) -> Hypergraph {
        let mut out: Vec<VertexSet> = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            let r = e.intersection(s);
            if !out.contains(&r) {
                out.push(r);
            }
        }
        Hypergraph::from_edge_vec(self.num_vertices, out)
    }

    /// The restriction `H_S = { E ∈ H | E ⊆ S }` used by the decomposition (Section 2).
    pub fn restrict_subedges(&self, s: &VertexSet) -> Hypergraph {
        let edges = self
            .edges
            .iter()
            .filter(|e| e.is_subset(s))
            .cloned()
            .collect();
        Hypergraph::from_edge_vec(self.num_vertices, edges)
    }

    /// The complemented hypergraph `Hᶜ = { V − E | E ∈ H }` over the universe, as used
    /// by the frequent-itemset reduction (`IS⁻ = tr(IS⁺ᶜ)`).
    pub fn complement_edges(&self) -> Hypergraph {
        let edges = self
            .edges
            .iter()
            .map(|e| e.complement(self.num_vertices))
            .collect();
        Hypergraph::from_edge_vec(self.num_vertices, edges)
    }

    /// For every vertex, in how many edges it occurs.
    pub fn vertex_frequencies(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.num_vertices];
        for e in &self.edges {
            for v in e.iter() {
                freq[v.index()] += 1;
            }
        }
        freq
    }

    /// The vertices occurring in **more than** `threshold` edges (strict), as a set.
    /// With `threshold = num_edges / 2` (integer division) this is exactly the set
    /// `I_α` of "frequent vertices" from the `process` procedure.
    pub fn frequent_vertices(&self, threshold: usize) -> VertexSet {
        let freq = self.vertex_frequencies();
        let mut s = VertexSet::empty(self.num_vertices);
        for (i, &f) in freq.iter().enumerate() {
            if f > threshold {
                s.insert(Vertex::from(i));
            }
        }
        s
    }

    /// Whether every edge of `self` intersects every edge of `other` — the basic
    /// necessary condition for duality ("cross-intersection").
    pub fn cross_intersects(&self, other: &Hypergraph) -> bool {
        self.edges
            .iter()
            .all(|a| other.edges.iter().all(|b| a.intersects(b)))
    }

    /// Removes the edge at position `i` and returns it.
    pub fn remove_edge(&mut self, i: usize) -> VertexSet {
        self.index = OnceCell::new();
        self.edges.remove(i)
    }

    /// Maximum edge cardinality (0 for an edgeless hypergraph).
    pub fn max_edge_size(&self) -> usize {
        self.edges.iter().map(|e| e.len()).max().unwrap_or(0)
    }

    /// Minimum edge cardinality (0 for an edgeless hypergraph).
    pub fn min_edge_size(&self) -> usize {
        self.edges.iter().map(|e| e.len()).min().unwrap_or(0)
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hypergraph(n={}, [", self.num_vertices)?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e:?}")?;
        }
        write!(f, "])")
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# n={} m={}", self.num_vertices, self.num_edges())?;
        for e in &self.edges {
            let idx: Vec<String> = e.iter().map(|v| v.0.to_string()).collect();
            writeln!(f, "{}", idx.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vset;

    fn triangle() -> Hypergraph {
        // Edges of the triangle graph K3 on vertices {0,1,2}.
        Hypergraph::from_index_edges(3, &[&[0, 1], &[1, 2], &[0, 2]])
    }

    #[test]
    fn basic_accessors() {
        let h = triangle();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.volume(), 6);
        assert_eq!(h.encoding_bits(), 9);
        assert_eq!(h.max_edge_size(), 2);
        assert_eq!(h.min_edge_size(), 2);
        assert!(!h.is_empty());
        assert!(h.contains_edge(&vset![3; 0, 1]));
        assert!(!h.contains_edge(&vset![3; 0]));
        assert_eq!(h.support().to_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn universe_grows_with_edges() {
        let mut h = Hypergraph::new(2);
        h.add_edge(vset![2; 0, 1]);
        h.add_edge(vset![6; 5]);
        assert_eq!(h.num_vertices(), 6);
        // first edge still valid and comparable
        assert!(h.edge(0).contains(Vertex::new(1)));
        assert!(h.is_simple());
    }

    #[test]
    fn simplicity() {
        let h = triangle();
        assert!(h.is_simple());
        assert!(h.check_simple().is_ok());
        let bad = Hypergraph::from_index_edges(3, &[&[0, 1], &[0, 1, 2]]);
        assert!(!bad.is_simple());
        let err = bad.check_simple().unwrap_err();
        match err {
            HypergraphError::NotSimple {
                contained,
                container,
            } => {
                assert_eq!((contained, container), (0, 1));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // duplicates are not simple either
        let dup = Hypergraph::from_index_edges(3, &[&[0, 1], &[0, 1]]);
        assert!(!dup.is_simple());
    }

    #[test]
    fn minimization_keeps_minimal_edges() {
        let h = Hypergraph::from_index_edges(4, &[&[0, 1, 2], &[0, 1], &[2, 3], &[2, 3], &[1]]);
        let m = h.minimize();
        assert!(m.is_simple());
        assert!(m.contains_edge(&vset![4; 2, 3]));
        assert!(m.contains_edge(&vset![4; 1]));
        assert!(!m.contains_edge(&vset![4; 0, 1, 2]));
        // {0,1} is absorbed by {1}
        assert!(!m.contains_edge(&vset![4; 0, 1]));
        assert_eq!(m.num_edges(), 2);
    }

    #[test]
    fn transversal_predicates() {
        let h = triangle();
        // vertex covers of the triangle: any 2 vertices
        assert!(h.is_transversal(&vset![3; 0, 1]));
        assert!(h.is_minimal_transversal(&vset![3; 0, 1]));
        assert!(h.is_transversal(&vset![3; 0, 1, 2]));
        assert!(!h.is_minimal_transversal(&vset![3; 0, 1, 2]));
        assert!(!h.is_transversal(&vset![3; 0]));
        // minimize a redundant transversal
        let m = h.minimize_transversal(&vset![3; 0, 1, 2]);
        assert!(h.is_minimal_transversal(&m));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn transversal_conventions_for_degenerate_hypergraphs() {
        let empty = Hypergraph::new(3); // no edges
        assert!(empty.is_transversal(&vset![3;]));
        assert!(empty.is_minimal_transversal(&vset![3;]));
        let with_empty_edge = Hypergraph::from_edges(3, [VertexSet::empty(3)]);
        assert!(!with_empty_edge.is_transversal(&vset![3; 0, 1, 2]));
    }

    #[test]
    fn new_transversal_definition() {
        let g = triangle();
        let h = Hypergraph::from_index_edges(3, &[&[0, 1]]);
        // {0,2} is a transversal of g and does not contain the single edge {0,1} of h
        assert!(g.is_new_transversal(&h, &vset![3; 0, 2]));
        // {0,1} contains an edge of h
        assert!(!g.is_new_transversal(&h, &vset![3; 0, 1]));
        // {0} is not a transversal of g
        assert!(!g.is_new_transversal(&h, &vset![3; 0]));
    }

    #[test]
    fn restrictions_match_paper_definitions() {
        let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3], &[1, 2]]);
        let s = vset![4; 1, 2];
        let gs = g.restrict_intersections(&s);
        // {0,1}∩S = {1}, {2,3}∩S = {2}, {1,2}∩S = {1,2}
        assert!(gs.contains_edge(&vset![4; 1]));
        assert!(gs.contains_edge(&vset![4; 2]));
        assert!(gs.contains_edge(&vset![4; 1, 2]));
        assert_eq!(gs.num_edges(), 3);
        let hs = g.restrict_subedges(&s);
        assert_eq!(hs.num_edges(), 1);
        assert!(hs.contains_edge(&vset![4; 1, 2]));
        // duplicates collapse in restrict_intersections
        let g2 = Hypergraph::from_index_edges(4, &[&[0, 1], &[1, 3]]);
        let gs2 = g2.restrict_intersections(&vset![4; 1]);
        assert_eq!(gs2.num_edges(), 1);
    }

    #[test]
    fn complement_edges() {
        let h = Hypergraph::from_index_edges(4, &[&[0, 1], &[2]]);
        let c = h.complement_edges();
        assert!(c.contains_edge(&vset![4; 2, 3]));
        assert!(c.contains_edge(&vset![4; 0, 1, 3]));
    }

    #[test]
    fn frequencies_and_frequent_vertices() {
        let h = Hypergraph::from_index_edges(4, &[&[0, 1], &[0, 2], &[0, 3]]);
        assert_eq!(h.vertex_frequencies(), vec![3, 1, 1, 1]);
        // threshold |H|/2 = 1: vertices in more than 1 edge
        assert_eq!(h.frequent_vertices(h.num_edges() / 2).to_indices(), vec![0]);
    }

    #[test]
    fn cross_intersection() {
        let g = triangle();
        let tr = Hypergraph::from_index_edges(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        assert!(g.cross_intersects(&tr));
        let not = Hypergraph::from_index_edges(3, &[&[0]]);
        assert!(!g.cross_intersects(&not)); // {0} misses edge {1,2}
    }

    #[test]
    fn canonical_and_equality() {
        let a = Hypergraph::from_index_edges(3, &[&[1, 2], &[0, 1]]);
        let b = Hypergraph::from_index_edges(3, &[&[0, 1], &[1, 2]]);
        assert!(a.same_edge_set(&b));
        assert_eq!(a.canonicalized().edges(), b.canonicalized().edges());
        let c = Hypergraph::from_index_edges(3, &[&[0, 1]]);
        assert!(!a.same_edge_set(&c));
    }

    #[test]
    fn display_round_trip_shape() {
        let h = triangle();
        let text = h.to_string();
        assert!(text.starts_with("# n=3 m=3"));
        assert_eq!(text.lines().count(), 4);
    }
}
