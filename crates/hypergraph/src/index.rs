//! A query-oriented index over a hypergraph's edges.
//!
//! The duality solvers interrogate the same hypergraph over and over in their inner
//! loops: "which edges contain vertex `v`?" (the `marksmall` singleton rule and the
//! oracle chain), "does `t` meet every edge?" (transversal checks inside
//! `minimize_transversal` and the Berge ground truth), "is some edge inside `x`?"
//! (monotone DNF evaluation).  Answering those from the plain edge list is linear in
//! the number of edges even when a single vertex is queried, and walks a `Vec` of
//! individually-allocated sets.
//!
//! [`HypergraphIndex`] precomputes, in one pass over the edges:
//!
//! * a **flat word arena**: every edge's bitmap stored contiguously at a fixed stride
//!   (`words_per_edge`), so edge-vs-set operations are word loops over one allocation;
//! * **per-vertex incidence lists** in CSR layout (`edges_containing`), so vertex
//!   queries touch only the edges that matter;
//! * **cached edge sizes**, so `|E|` never recounts bits.
//!
//! [`crate::Hypergraph`] builds the index lazily and caches it; any mutation
//! invalidates the cache.  All index queries are read-only and answer exactly like the
//! corresponding `Hypergraph` methods.

use crate::vertex::Vertex;
use crate::vset::VertexSet;

const WORD_BITS: usize = 64;

/// Precomputed arena + incidence view of a hypergraph's edge family.
#[derive(Debug, Clone)]
pub struct HypergraphIndex {
    num_vertices: usize,
    num_edges: usize,
    words_per_edge: usize,
    /// Edge bitmaps, edge `i` occupying `arena[i*words_per_edge .. (i+1)*words_per_edge]`.
    arena: Vec<u64>,
    /// `|E_i|` for every edge, cached at build time.
    edge_sizes: Vec<u32>,
    /// CSR offsets into `incidence`: vertex `v`'s edges are
    /// `incidence[incidence_start[v] .. incidence_start[v+1]]`.
    incidence_start: Vec<u32>,
    /// Edge ids, grouped by vertex, each group in input edge order.
    incidence: Vec<u32>,
}

impl HypergraphIndex {
    /// Builds the index for an edge family over `num_vertices` vertices.
    pub fn build(num_vertices: usize, edges: &[VertexSet]) -> Self {
        let words_per_edge = num_vertices.div_ceil(WORD_BITS).max(1);
        let num_edges = edges.len();
        let mut arena = vec![0u64; num_edges * words_per_edge];
        let mut edge_sizes = Vec::with_capacity(num_edges);
        let mut degrees = vec![0u32; num_vertices];
        for (i, edge) in edges.iter().enumerate() {
            let row = &mut arena[i * words_per_edge..(i + 1) * words_per_edge];
            for (w, word) in edge.as_words().iter().enumerate().take(words_per_edge) {
                row[w] = *word;
            }
            edge_sizes.push(edge.len() as u32);
            for v in edge.iter() {
                degrees[v.index()] += 1;
            }
        }
        let mut incidence_start = Vec::with_capacity(num_vertices + 1);
        incidence_start.push(0u32);
        let mut total = 0u32;
        for &d in &degrees {
            total += d;
            incidence_start.push(total);
        }
        let mut cursor: Vec<u32> = incidence_start[..num_vertices].to_vec();
        let mut incidence = vec![0u32; total as usize];
        for (i, edge) in edges.iter().enumerate() {
            for v in edge.iter() {
                let slot = &mut cursor[v.index()];
                incidence[*slot as usize] = i as u32;
                *slot += 1;
            }
        }
        HypergraphIndex {
            num_vertices,
            num_edges,
            words_per_edge,
            arena,
            edge_sizes,
            incidence_start,
            incidence,
        }
    }

    /// Number of vertices of the indexed universe.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of indexed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Words per edge row in the arena.
    #[inline]
    pub fn words_per_edge(&self) -> usize {
        self.words_per_edge
    }

    /// The bitmap words of edge `i` (lowest word first).
    #[inline]
    pub fn edge_words(&self, i: usize) -> &[u64] {
        &self.arena[i * self.words_per_edge..(i + 1) * self.words_per_edge]
    }

    /// Cached cardinality `|E_i|`.
    #[inline]
    pub fn edge_size(&self, i: usize) -> usize {
        self.edge_sizes[i] as usize
    }

    /// Ids of the edges containing vertex `v`, in input edge order.  Out-of-universe
    /// vertices have no incident edges.
    #[inline]
    pub fn edges_containing(&self, v: Vertex) -> &[u32] {
        let i = v.index();
        if i >= self.num_vertices {
            return &[];
        }
        &self.incidence[self.incidence_start[i] as usize..self.incidence_start[i + 1] as usize]
    }

    /// Number of edges containing vertex `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.edges_containing(v).len()
    }

    /// Whether edge `i` contains vertex `v`.
    #[inline]
    pub fn edge_contains(&self, i: usize, v: Vertex) -> bool {
        let idx = v.index();
        if idx >= self.num_vertices {
            return false;
        }
        self.edge_words(i)[idx / WORD_BITS] & (1 << (idx % WORD_BITS)) != 0
    }

    /// Whether edge `i` shares a vertex with `s`.
    #[inline]
    pub fn edge_intersects(&self, i: usize, s: &VertexSet) -> bool {
        row_intersects(self.edge_words(i), s.as_words())
    }

    /// Whether edge `i` is a subset of `s`.
    #[inline]
    pub fn edge_is_subset(&self, i: usize, s: &VertexSet) -> bool {
        row_is_subset(self.edge_words(i), s.as_words())
    }

    /// `|E_i ∩ s|`.
    #[inline]
    pub fn edge_intersection_len(&self, i: usize, s: &VertexSet) -> usize {
        let e = self.edge_words(i);
        let sw = s.as_words();
        let common = e.len().min(sw.len());
        e[..common]
            .iter()
            .zip(&sw[..common])
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether `t` meets every indexed edge (same conventions as
    /// [`crate::Hypergraph::is_transversal`]: an empty edge defeats every set, no edges
    /// at all are met by every set).
    pub fn is_transversal(&self, t: &VertexSet) -> bool {
        let tw = t.as_words();
        if self.words_per_edge == 1 {
            // Inline universes: one contiguous pass over the arena, one AND per edge.
            let t0 = tw.first().copied().unwrap_or(0);
            return self.arena.iter().all(|&e| e & t0 != 0);
        }
        if self.words_per_edge == 2 && tw.len() >= 2 {
            // Two-word universes (65–128 vertices) are the realistic spill case:
            // stride the arena directly, short-circuiting on the first word like the
            // dense (covering) candidates almost always allow.
            let (t0, t1) = (tw[0], tw[1]);
            return self
                .arena
                .chunks_exact(2)
                .all(|row| row[0] & t0 != 0 || row[1] & t1 != 0);
        }
        if tw.len() >= self.words_per_edge {
            // The candidate covers the whole universe (the common case): full-row
            // zips with no per-row length bookkeeping.
            return self
                .arena
                .chunks_exact(self.words_per_edge)
                .all(|row| row.iter().zip(tw).any(|(a, b)| a & b != 0));
        }
        self.arena
            .chunks_exact(self.words_per_edge)
            .all(|row| row_intersects(row, tw))
    }

    /// Monotone DNF evaluation: whether some indexed edge (term) is contained in
    /// `true_vars`.
    pub fn evaluate_dnf(&self, true_vars: &VertexSet) -> bool {
        let tw = true_vars.as_words();
        if self.words_per_edge == 1 {
            let t0 = tw.first().copied().unwrap_or(0);
            return self.arena.iter().any(|&e| e & !t0 == 0);
        }
        if self.words_per_edge == 2 && tw.len() >= 2 {
            let (t0, t1) = (tw[0], tw[1]);
            return self
                .arena
                .chunks_exact(2)
                .any(|row| row[0] & !t0 == 0 && row[1] & !t1 == 0);
        }
        self.arena
            .chunks_exact(self.words_per_edge)
            .any(|row| row_is_subset(row, tw))
    }
}

/// Whether an arena row shares a set bit with `s_words` (absent words are zero).
#[inline]
fn row_intersects(row: &[u64], s_words: &[u64]) -> bool {
    let common = row.len().min(s_words.len());
    row[..common]
        .iter()
        .zip(&s_words[..common])
        .any(|(a, b)| a & b != 0)
}

/// Whether every set bit of an arena row also appears in `s_words` (absent words are
/// zero, so trailing row words must be empty).
#[inline]
fn row_is_subset(row: &[u64], s_words: &[u64]) -> bool {
    let common = row.len().min(s_words.len());
    row[..common]
        .iter()
        .zip(&s_words[..common])
        .all(|(a, b)| a & !b == 0)
        && row[common..].iter().all(|&a| a == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::Hypergraph;
    use crate::vset;

    fn family() -> Hypergraph {
        Hypergraph::from_index_edges(5, &[&[0, 1], &[1, 2, 3], &[3, 4], &[0, 4]])
    }

    #[test]
    fn incidence_lists_match_scans() {
        let h = family();
        let idx = h.index();
        for v in 0..h.num_vertices() {
            let v = Vertex::from(v);
            let expected: Vec<u32> = h
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.contains(v))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(idx.edges_containing(v), expected.as_slice(), "{v}");
            assert_eq!(idx.degree(v), expected.len());
        }
        assert_eq!(idx.edges_containing(Vertex::new(99)), &[] as &[u32]);
    }

    #[test]
    fn arena_rows_and_sizes_match_edges() {
        let h = family();
        let idx = h.index();
        assert_eq!(idx.num_edges(), h.num_edges());
        assert_eq!(idx.num_vertices(), 5);
        for (i, e) in h.edges().iter().enumerate() {
            assert_eq!(idx.edge_size(i), e.len());
            assert_eq!(&idx.edge_words(i)[..e.as_words().len()], e.as_words());
            for v in 0..6usize {
                assert_eq!(
                    idx.edge_contains(i, Vertex::from(v)),
                    e.contains(Vertex::from(v))
                );
            }
        }
    }

    #[test]
    fn edge_queries_match_vertexset_ops() {
        let h = family();
        let idx = h.index();
        let probes = [
            vset![5; 0],
            vset![5; 1, 3],
            vset![5; 0, 1, 2, 3, 4],
            vset![5;],
            VertexSet::from_indices(90, [1, 3, 80]),
        ];
        for s in &probes {
            for (i, e) in h.edges().iter().enumerate() {
                assert_eq!(idx.edge_intersects(i, s), e.intersects(s));
                assert_eq!(idx.edge_is_subset(i, s), e.is_subset(s));
                assert_eq!(idx.edge_intersection_len(i, s), e.intersection_len(s));
            }
            assert_eq!(
                idx.is_transversal(s),
                h.edges().iter().all(|e| e.intersects(s))
            );
            assert_eq!(
                idx.evaluate_dnf(s),
                h.edges().iter().any(|e| e.is_subset(s))
            );
        }
    }

    #[test]
    fn degenerate_conventions() {
        let empty = Hypergraph::new(3);
        assert!(empty.index().is_transversal(&vset![3;]));
        assert!(!empty.index().evaluate_dnf(&vset![3; 0, 1, 2]));
        let with_empty_edge = Hypergraph::from_edges(3, [VertexSet::empty(3)]);
        assert!(!with_empty_edge.index().is_transversal(&vset![3; 0, 1, 2]));
        assert!(with_empty_edge.index().evaluate_dnf(&vset![3;]));
    }

    #[test]
    fn spilled_universe() {
        let mut h = Hypergraph::new(70);
        h.add_edge(VertexSet::from_indices(70, [0, 65]));
        h.add_edge(VertexSet::from_indices(70, [65, 69]));
        let idx = h.index();
        assert_eq!(idx.words_per_edge(), 2);
        assert_eq!(idx.edges_containing(Vertex::new(65)), &[0, 1]);
        assert!(idx.is_transversal(&VertexSet::from_indices(70, [65])));
        assert!(!idx.is_transversal(&VertexSet::from_indices(70, [0])));
    }
}
