//! A query-oriented index over a hypergraph's edges.
//!
//! The duality solvers interrogate the same hypergraph over and over in their inner
//! loops: "which edges contain vertex `v`?" (the `marksmall` singleton rule and the
//! oracle chain), "does `t` meet every edge?" (transversal checks inside
//! `minimize_transversal` and the Berge ground truth), "is some edge inside `x`?"
//! (monotone DNF evaluation).  Answering those from the plain edge list is linear in
//! the number of edges even when a single vertex is queried, and walks a `Vec` of
//! individually-allocated sets.
//!
//! [`HypergraphIndex`] precomputes, in one pass over the edges:
//!
//! * a **flat word arena**: every edge's bitmap stored contiguously at a fixed stride
//!   (`words_per_edge`), so edge-vs-set operations are word loops over one allocation;
//! * **per-vertex incidence lists** in CSR layout (`edges_containing`), so vertex
//!   queries touch only the edges that matter;
//! * **cached edge sizes**, so `|E|` never recounts bits.
//!
//! [`crate::Hypergraph`] builds the index lazily and caches it; any mutation
//! invalidates the cache.  All index queries are read-only and answer exactly like the
//! corresponding `Hypergraph` methods.

use crate::vertex::Vertex;
use crate::vset::VertexSet;
use alloc::vec;
use alloc::vec::Vec;

const WORD_BITS: usize = 64;

/// Precomputed arena + incidence view of a hypergraph's edge family.
#[derive(Debug, Clone)]
pub struct HypergraphIndex {
    num_vertices: usize,
    num_edges: usize,
    words_per_edge: usize,
    /// Edge bitmaps, edge `i` occupying `arena[i*words_per_edge .. (i+1)*words_per_edge]`.
    arena: Vec<u64>,
    /// `|E_i|` for every edge, cached at build time.
    edge_sizes: Vec<u32>,
    /// CSR offsets into `incidence`: vertex `v`'s edges are
    /// `incidence[incidence_start[v] .. incidence_start[v+1]]`.
    incidence_start: Vec<u32>,
    /// Edge ids, grouped by vertex, each group in input edge order.
    incidence: Vec<u32>,
}

impl HypergraphIndex {
    /// Builds the index for an edge family over `num_vertices` vertices.
    pub fn build(num_vertices: usize, edges: &[VertexSet]) -> Self {
        let words_per_edge = num_vertices.div_ceil(WORD_BITS).max(1);
        let num_edges = edges.len();
        let mut arena = vec![0u64; num_edges * words_per_edge];
        let mut edge_sizes = Vec::with_capacity(num_edges);
        let mut degrees = vec![0u32; num_vertices];
        for (i, edge) in edges.iter().enumerate() {
            // An edge built in a larger-capacity universe may carry extra
            // words, but they must all be zero: a set bit past
            // `words_per_edge` names a vertex outside the indexed universe,
            // and dropping it would silently change every query answer.
            debug_assert!(
                edge.as_words().iter().skip(words_per_edge).all(|&w| w == 0),
                "edge {i} has vertices beyond the {num_vertices}-vertex universe"
            );
            let row = &mut arena[i * words_per_edge..(i + 1) * words_per_edge];
            for (w, word) in edge.as_words().iter().enumerate().take(words_per_edge) {
                row[w] = *word;
            }
            edge_sizes.push(edge.len() as u32);
            for v in edge.iter() {
                degrees[v.index()] += 1;
            }
        }
        let mut incidence_start = Vec::with_capacity(num_vertices + 1);
        incidence_start.push(0u32);
        let mut total = 0u32;
        for &d in &degrees {
            total += d;
            incidence_start.push(total);
        }
        let mut cursor: Vec<u32> = incidence_start[..num_vertices].to_vec();
        let mut incidence = vec![0u32; total as usize];
        for (i, edge) in edges.iter().enumerate() {
            for v in edge.iter() {
                let slot = &mut cursor[v.index()];
                incidence[*slot as usize] = i as u32;
                *slot += 1;
            }
        }
        HypergraphIndex {
            num_vertices,
            num_edges,
            words_per_edge,
            arena,
            edge_sizes,
            incidence_start,
            incidence,
        }
    }

    /// Number of vertices of the indexed universe.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of indexed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Words per edge row in the arena.
    #[inline]
    pub fn words_per_edge(&self) -> usize {
        self.words_per_edge
    }

    /// The bitmap words of edge `i` (lowest word first).
    #[inline]
    pub fn edge_words(&self, i: usize) -> &[u64] {
        &self.arena[i * self.words_per_edge..(i + 1) * self.words_per_edge]
    }

    /// Cached cardinality `|E_i|`.
    #[inline]
    pub fn edge_size(&self, i: usize) -> usize {
        self.edge_sizes[i] as usize
    }

    /// Ids of the edges containing vertex `v`, in input edge order.  Out-of-universe
    /// vertices have no incident edges.
    #[inline]
    pub fn edges_containing(&self, v: Vertex) -> &[u32] {
        let i = v.index();
        if i >= self.num_vertices {
            return &[];
        }
        &self.incidence[self.incidence_start[i] as usize..self.incidence_start[i + 1] as usize]
    }

    /// Number of edges containing vertex `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.edges_containing(v).len()
    }

    /// Whether edge `i` contains vertex `v`.
    #[inline]
    pub fn edge_contains(&self, i: usize, v: Vertex) -> bool {
        let idx = v.index();
        if idx >= self.num_vertices {
            return false;
        }
        self.edge_words(i)[idx / WORD_BITS] & (1 << (idx % WORD_BITS)) != 0
    }

    /// Whether edge `i` shares a vertex with `s`.
    #[inline]
    pub fn edge_intersects(&self, i: usize, s: &VertexSet) -> bool {
        let e = self.edge_words(i);
        let sw = s.as_words();
        let common = e.len().min(sw.len());
        words_intersect(&e[..common], &sw[..common])
    }

    /// Whether edge `i` is a subset of `s`.
    #[inline]
    pub fn edge_is_subset(&self, i: usize, s: &VertexSet) -> bool {
        let e = self.edge_words(i);
        let sw = s.as_words();
        let common = e.len().min(sw.len());
        words_subset(&e[..common], &sw[..common]) && e[common..].iter().all(|&w| w == 0)
    }

    /// `|E_i ∩ s|`.
    #[inline]
    pub fn edge_intersection_len(&self, i: usize, s: &VertexSet) -> usize {
        let e = self.edge_words(i);
        let sw = s.as_words();
        let common = e.len().min(sw.len());
        words_and_popcount(&e[..common], &sw[..common]) as usize
    }

    /// The probe's word slice truncated/zero-padded to the arena stride, so every
    /// row kernel runs on equal-length slices with no per-row bookkeeping.
    /// Truncation is exact: arena rows have no bits past `words_per_edge`, so
    /// probe words beyond the stride can neither intersect an edge nor break a
    /// subset check.
    #[inline]
    fn pad_probe<'a>(&self, words: &'a [u64], scratch: &'a mut Vec<u64>) -> &'a [u64] {
        if words.len() >= self.words_per_edge {
            &words[..self.words_per_edge]
        } else {
            scratch.clear();
            scratch.extend_from_slice(words);
            scratch.resize(self.words_per_edge, 0);
            scratch
        }
    }

    /// Whether `t` meets every indexed edge (same conventions as
    /// [`crate::Hypergraph::is_transversal`]: an empty edge defeats every set, no edges
    /// at all are met by every set).
    pub fn is_transversal(&self, t: &VertexSet) -> bool {
        let tw = t.as_words();
        if self.words_per_edge == 1 {
            // Inline universes: one contiguous pass over the arena, one AND per edge.
            let t0 = tw.first().copied().unwrap_or(0);
            return self.arena.iter().all(|&e| e & t0 != 0);
        }
        if self.words_per_edge == 2 && tw.len() >= 2 {
            // Two-word universes (65–128 vertices) are the realistic spill case:
            // stride the arena directly, short-circuiting on the first word like the
            // dense (covering) candidates almost always allow.
            let (t0, t1) = (tw[0], tw[1]);
            return self
                .arena
                .chunks_exact(2)
                .all(|row| row[0] & t0 != 0 || row[1] & t1 != 0);
        }
        // Wider universes: unrolled four-words-at-a-time accumulation per row.
        let mut scratch = Vec::new();
        let tw = self.pad_probe(tw, &mut scratch);
        self.arena
            .chunks_exact(self.words_per_edge)
            .all(|row| words_intersect(row, tw))
    }

    /// Monotone DNF evaluation: whether some indexed edge (term) is contained in
    /// `true_vars`.
    pub fn evaluate_dnf(&self, true_vars: &VertexSet) -> bool {
        let tw = true_vars.as_words();
        if self.words_per_edge == 1 {
            let t0 = tw.first().copied().unwrap_or(0);
            return self.arena.iter().any(|&e| e & !t0 == 0);
        }
        if self.words_per_edge == 2 && tw.len() >= 2 {
            let (t0, t1) = (tw[0], tw[1]);
            return self
                .arena
                .chunks_exact(2)
                .any(|row| row[0] & !t0 == 0 && row[1] & !t1 == 0);
        }
        let mut scratch = Vec::new();
        let tw = self.pad_probe(tw, &mut scratch);
        self.arena
            .chunks_exact(self.words_per_edge)
            .any(|row| words_subset(row, tw))
    }

    /// Batched transversal probe: `is_transversal` for every candidate in one
    /// pass over the edge-word arena.  Each row is loaded once and tested
    /// against every still-alive probe, so the arena is streamed through the
    /// cache once instead of once per candidate; a probe that misses an edge
    /// is never tested again.  Arenas small enough to stay cache-resident
    /// (`ARENA_STREAM_WORDS`) fall back to per-probe scans, whose per-row
    /// early exits win when re-reading the arena costs nothing.
    pub fn transversal_many(&self, probes: &[&VertexSet]) -> Vec<bool> {
        if self.arena.len() <= ARENA_STREAM_WORDS {
            return probes.iter().map(|p| self.is_transversal(p)).collect();
        }
        let wpe = self.words_per_edge;
        let packed = self.pack_probes(probes);
        let mut alive = vec![true; probes.len()];
        let mut remaining = probes.len();
        if remaining == 0 || self.num_edges == 0 {
            return alive;
        }
        for row in self.arena.chunks_exact(wpe) {
            for (ok, probe) in alive.iter_mut().zip(packed.chunks_exact(wpe)) {
                if *ok && !words_intersect(row, probe) {
                    *ok = false;
                    remaining -= 1;
                }
            }
            if remaining == 0 {
                break;
            }
        }
        alive
    }

    /// Batched joint classification: for every candidate, whether it meets all
    /// edges (`transversal`, as [`Self::is_transversal`]) and whether it
    /// contains some edge (`covers_edge`, as [`Self::evaluate_dnf`]) — both
    /// answered in a single pass over the edge-word arena.
    pub fn classify_many(&self, probes: &[&VertexSet]) -> Vec<ProbeClass> {
        if self.arena.len() <= ARENA_STREAM_WORDS {
            return probes
                .iter()
                .map(|p| ProbeClass {
                    transversal: self.is_transversal(p),
                    covers_edge: self.evaluate_dnf(p),
                })
                .collect();
        }
        let wpe = self.words_per_edge;
        let packed = self.pack_probes(probes);
        let mut out = vec![
            ProbeClass {
                transversal: true,
                covers_edge: false,
            };
            probes.len()
        ];
        // A probe is settled once both monotone answers have flipped.
        let mut undecided = probes.len();
        if undecided == 0 || self.num_edges == 0 {
            return out;
        }
        for row in self.arena.chunks_exact(wpe) {
            for (class, probe) in out.iter_mut().zip(packed.chunks_exact(wpe)) {
                if !class.transversal && class.covers_edge {
                    continue; // both monotone answers already flipped
                }
                if class.transversal && !words_intersect(row, probe) {
                    class.transversal = false;
                }
                if !class.covers_edge && words_subset(row, probe) {
                    class.covers_edge = true;
                }
                if !class.transversal && class.covers_edge {
                    undecided -= 1;
                }
            }
            if undecided == 0 {
                break;
            }
        }
        out
    }

    /// Indices of the edges contained in `s`, in input order (one arena pass).
    pub fn edges_inside(&self, s: &VertexSet) -> Vec<usize> {
        let mut scratch = Vec::new();
        let sw = self.pad_probe(s.as_words(), &mut scratch);
        self.arena
            .chunks_exact(self.words_per_edge)
            .enumerate()
            .filter(|(_, row)| words_subset(row, sw))
            .map(|(i, _)| i)
            .collect()
    }

    /// How many edges are contained in `s` (one arena pass).
    pub fn count_edges_inside(&self, s: &VertexSet) -> usize {
        let mut scratch = Vec::new();
        let sw = self.pad_probe(s.as_words(), &mut scratch);
        self.arena
            .chunks_exact(self.words_per_edge)
            .filter(|row| words_subset(row, sw))
            .count()
    }

    /// The first edge (input order) disjoint from `s`, if any (one arena pass).
    pub fn first_edge_disjoint(&self, s: &VertexSet) -> Option<usize> {
        let mut scratch = Vec::new();
        let sw = self.pad_probe(s.as_words(), &mut scratch);
        self.arena
            .chunks_exact(self.words_per_edge)
            .position(|row| !words_intersect(row, sw))
    }

    /// Joint intersection counts against two probes in one arena pass: calls
    /// `visit(edge, |E ∩ a|, |E ∩ b|)` for every edge, loading each row once
    /// for both counts.  The workhorse of FK's conditional-probabilities
    /// scoring loop, which needs both counts for every edge on every call.
    pub fn for_each_intersection_pair(
        &self,
        a: &VertexSet,
        b: &VertexSet,
        mut visit: impl FnMut(usize, u32, u32),
    ) {
        let mut scratch_a = Vec::new();
        let mut scratch_b = Vec::new();
        let aw = self.pad_probe(a.as_words(), &mut scratch_a);
        let bw = self.pad_probe(b.as_words(), &mut scratch_b);
        for (i, row) in self.arena.chunks_exact(self.words_per_edge).enumerate() {
            visit(i, words_and_popcount(row, aw), words_and_popcount(row, bw));
        }
    }

    /// Flattens probes into a zero-padded matrix at the arena stride.
    fn pack_probes(&self, probes: &[&VertexSet]) -> Vec<u64> {
        let wpe = self.words_per_edge;
        let mut packed = vec![0u64; probes.len() * wpe];
        for (i, p) in probes.iter().enumerate() {
            let words = p.as_words();
            let n = words.len().min(wpe);
            packed[i * wpe..i * wpe + n].copy_from_slice(&words[..n]);
        }
        packed
    }
}

/// Arena size (in `u64` words) below which the batched probes run per-probe
/// scans instead of one row-major streaming pass: 256 KiB of edge words sit
/// comfortably in a modern L2, where re-reading the arena once per probe is
/// free and the per-probe early exits dominate.  Row-major streaming pays off
/// once the arena spills the cache and memory traffic becomes the bottleneck.
const ARENA_STREAM_WORDS: usize = 1 << 15;

/// Joint transversal/DNF answer of one probe against the whole edge family
/// (see [`HypergraphIndex::classify_many`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeClass {
    /// The probe meets every edge ([`HypergraphIndex::is_transversal`]).
    pub transversal: bool,
    /// Some edge is contained in the probe ([`HypergraphIndex::evaluate_dnf`]).
    pub covers_edge: bool,
}

// ---- wide-word scan kernels -------------------------------------------------
//
// Equal-length word loops, manually unrolled four u64s per step (u64x4): the
// accumulator form has no per-word branch, so the compiler vectorizes the
// AND/OR block, and the per-block early exit keeps the common dense-candidate
// case cheap.  Callers guarantee equal lengths by padding probes to the arena
// stride once per scan (`pad_probe`), not once per row.

/// Whether two equal-length word slices share a set bit.
#[inline]
fn words_intersect(row: &[u64], probe: &[u64]) -> bool {
    debug_assert_eq!(row.len(), probe.len());
    if row.len() < 4 {
        // Short rows (3 words, 129–192 vertices): a plain zip loop with its
        // per-word early exit beats setting up the block iterators.
        return row.iter().zip(probe).any(|(r, p)| r & p != 0);
    }
    let mut r4 = row.chunks_exact(4);
    let mut p4 = probe.chunks_exact(4);
    for (r, p) in (&mut r4).zip(&mut p4) {
        let acc = (r[0] & p[0]) | (r[1] & p[1]) | (r[2] & p[2]) | (r[3] & p[3]);
        if acc != 0 {
            return true;
        }
    }
    // The remainder is at most three words, where per-word early exit beats
    // accumulation: for dense probes the first word usually decides.
    r4.remainder()
        .iter()
        .zip(p4.remainder())
        .any(|(r, p)| r & p != 0)
}

/// Whether every set bit of `row` also appears in `probe` (equal lengths).
#[inline]
fn words_subset(row: &[u64], probe: &[u64]) -> bool {
    debug_assert_eq!(row.len(), probe.len());
    if row.len() < 4 {
        return row.iter().zip(probe).all(|(r, p)| r & !p == 0);
    }
    let mut r4 = row.chunks_exact(4);
    let mut p4 = probe.chunks_exact(4);
    for (r, p) in (&mut r4).zip(&mut p4) {
        let stray = (r[0] & !p[0]) | (r[1] & !p[1]) | (r[2] & !p[2]) | (r[3] & !p[3]);
        if stray != 0 {
            return false;
        }
    }
    r4.remainder()
        .iter()
        .zip(p4.remainder())
        .all(|(r, p)| r & !p == 0)
}

/// `popcount(row & probe)` over equal-length slices.
#[inline]
fn words_and_popcount(row: &[u64], probe: &[u64]) -> u32 {
    debug_assert_eq!(row.len(), probe.len());
    let mut r4 = row.chunks_exact(4);
    let mut p4 = probe.chunks_exact(4);
    let mut total = 0u32;
    for (r, p) in (&mut r4).zip(&mut p4) {
        total += (r[0] & p[0]).count_ones()
            + (r[1] & p[1]).count_ones()
            + (r[2] & p[2]).count_ones()
            + (r[3] & p[3]).count_ones();
    }
    for (r, p) in r4.remainder().iter().zip(p4.remainder()) {
        total += (r & p).count_ones();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::Hypergraph;
    use crate::vset;

    fn family() -> Hypergraph {
        Hypergraph::from_index_edges(5, &[&[0, 1], &[1, 2, 3], &[3, 4], &[0, 4]])
    }

    #[test]
    fn incidence_lists_match_scans() {
        let h = family();
        let idx = h.index();
        for v in 0..h.num_vertices() {
            let v = Vertex::from(v);
            let expected: Vec<u32> = h
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.contains(v))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(idx.edges_containing(v), expected.as_slice(), "{v}");
            assert_eq!(idx.degree(v), expected.len());
        }
        assert_eq!(idx.edges_containing(Vertex::new(99)), &[] as &[u32]);
    }

    #[test]
    fn arena_rows_and_sizes_match_edges() {
        let h = family();
        let idx = h.index();
        assert_eq!(idx.num_edges(), h.num_edges());
        assert_eq!(idx.num_vertices(), 5);
        for (i, e) in h.edges().iter().enumerate() {
            assert_eq!(idx.edge_size(i), e.len());
            assert_eq!(&idx.edge_words(i)[..e.as_words().len()], e.as_words());
            for v in 0..6usize {
                assert_eq!(
                    idx.edge_contains(i, Vertex::from(v)),
                    e.contains(Vertex::from(v))
                );
            }
        }
    }

    #[test]
    fn edge_queries_match_vertexset_ops() {
        let h = family();
        let idx = h.index();
        let probes = [
            vset![5; 0],
            vset![5; 1, 3],
            vset![5; 0, 1, 2, 3, 4],
            vset![5;],
            VertexSet::from_indices(90, [1, 3, 80]),
        ];
        for s in &probes {
            for (i, e) in h.edges().iter().enumerate() {
                assert_eq!(idx.edge_intersects(i, s), e.intersects(s));
                assert_eq!(idx.edge_is_subset(i, s), e.is_subset(s));
                assert_eq!(idx.edge_intersection_len(i, s), e.intersection_len(s));
            }
            assert_eq!(
                idx.is_transversal(s),
                h.edges().iter().all(|e| e.intersects(s))
            );
            assert_eq!(
                idx.evaluate_dnf(s),
                h.edges().iter().any(|e| e.is_subset(s))
            );
        }
    }

    #[test]
    fn degenerate_conventions() {
        let empty = Hypergraph::new(3);
        assert!(empty.index().is_transversal(&vset![3;]));
        assert!(!empty.index().evaluate_dnf(&vset![3; 0, 1, 2]));
        let with_empty_edge = Hypergraph::from_edges(3, [VertexSet::empty(3)]);
        assert!(!with_empty_edge.index().is_transversal(&vset![3; 0, 1, 2]));
        assert!(with_empty_edge.index().evaluate_dnf(&vset![3;]));
    }

    #[test]
    fn batched_probes_match_per_probe_calls() {
        // Cover several strides: 1 word, 2 words, and a wide 3-word universe.
        for n in [5usize, 70, 140] {
            let mut h = Hypergraph::new(n);
            h.add_edge(VertexSet::from_indices(n, [0, 1]));
            h.add_edge(VertexSet::from_indices(n, [1, n - 2, n - 1]));
            h.add_edge(VertexSet::from_indices(n, [0, n - 1]));
            let idx = h.index();
            let probes = [
                VertexSet::from_indices(n, [1, n - 1]),
                VertexSet::from_indices(n, [0]),
                VertexSet::full(n),
                VertexSet::empty(n),
                VertexSet::from_indices(n, [0, 1, n - 2, n - 1]),
            ];
            let refs: Vec<&VertexSet> = probes.iter().collect();
            let batched = idx.transversal_many(&refs);
            let classes = idx.classify_many(&refs);
            for (i, p) in probes.iter().enumerate() {
                assert_eq!(batched[i], idx.is_transversal(p), "n={n} probe {i}");
                assert_eq!(
                    classes[i].transversal,
                    idx.is_transversal(p),
                    "n={n} probe {i}"
                );
                assert_eq!(
                    classes[i].covers_edge,
                    idx.evaluate_dnf(p),
                    "n={n} probe {i}"
                );
            }
        }
    }

    #[test]
    fn single_probe_arena_scans_match_edge_loops() {
        let n = 200; // 4-word rows: exercises the unrolled block plus remainder
        let mut h = Hypergraph::new(n);
        h.add_edge(VertexSet::from_indices(n, [0, 64, 128, 192]));
        h.add_edge(VertexSet::from_indices(n, [2, 3]));
        h.add_edge(VertexSet::from_indices(n, [63, 64, 65]));
        h.add_edge(VertexSet::from_indices(n, [190, 199]));
        let idx = h.index();
        for s in [
            VertexSet::from_indices(n, [0, 2, 3, 64, 128, 192]),
            VertexSet::from_indices(n, [5]),
            VertexSet::full(n),
            VertexSet::empty(n),
        ] {
            let expected: Vec<usize> = h
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.is_subset(&s))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(idx.edges_inside(&s), expected);
            assert_eq!(idx.count_edges_inside(&s), expected.len());
            assert_eq!(
                idx.first_edge_disjoint(&s),
                h.edges().iter().position(|e| !e.intersects(&s))
            );
            let other = VertexSet::from_indices(n, [3, 65, 199]);
            let mut seen = Vec::new();
            idx.for_each_intersection_pair(&s, &other, |i, a, b| seen.push((i, a, b)));
            let expected_pairs: Vec<(usize, u32, u32)> = h
                .edges()
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    (
                        i,
                        e.intersection_len(&s) as u32,
                        e.intersection_len(&other) as u32,
                    )
                })
                .collect();
            assert_eq!(seen, expected_pairs);
        }
    }

    #[test]
    fn edge_from_larger_capacity_universe_indexes_exactly() {
        // An edge whose VertexSet was built with more capacity words than the
        // indexed universe needs: the extra (zero) words must be dropped
        // without changing any answer.  (Build debug-asserts they are zero.)
        let edges = [
            VertexSet::from_indices(200, [0, 65, 129]),
            VertexSet::from_indices(300, [1, 129]),
        ];
        let idx = HypergraphIndex::build(130, &edges);
        assert_eq!(idx.words_per_edge(), 3);
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(idx.edge_size(i), e.len());
            for v in [0usize, 1, 65, 129] {
                assert_eq!(
                    idx.edge_contains(i, Vertex::from(v)),
                    e.contains(Vertex::from(v))
                );
            }
        }
        assert!(idx.is_transversal(&VertexSet::from_indices(130, [129])));
        assert!(!idx.is_transversal(&VertexSet::from_indices(130, [0])));
        assert_eq!(idx.edges_containing(Vertex::new(129)), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "beyond the")]
    #[cfg(debug_assertions)]
    fn build_rejects_out_of_universe_bits() {
        // Vertex 250 lives in word 3, past the 3-word stride of a 130-vertex
        // universe — the silent-truncation case the build assert guards.
        let edges = [VertexSet::from_indices(300, [0, 250])];
        let _ = HypergraphIndex::build(130, &edges);
    }

    #[test]
    fn spilled_universe() {
        let mut h = Hypergraph::new(70);
        h.add_edge(VertexSet::from_indices(70, [0, 65]));
        h.add_edge(VertexSet::from_indices(70, [65, 69]));
        let idx = h.index();
        assert_eq!(idx.words_per_edge(), 2);
        assert_eq!(idx.edges_containing(Vertex::new(65)), &[0, 1]);
        assert!(idx.is_transversal(&VertexSet::from_indices(70, [65])));
        assert!(!idx.is_transversal(&VertexSet::from_indices(70, [0])));
    }
}
