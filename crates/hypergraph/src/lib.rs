//! # qld-hypergraph
//!
//! Hypergraph substrate for the reproduction of Gottlob's
//! *Deciding Monotone Duality and Identifying Frequent Itemsets in Quadratic Logspace*
//! (PODS 2013).
//!
//! This crate provides:
//!
//! * [`Vertex`] and [`VertexSet`] — dense bitset vertex sets, stored inline in a
//!   single machine word for universes of at most [`INLINE_BITS`] vertices;
//! * [`HypergraphIndex`] — the lazily cached hot-path index (flat edge-word arena,
//!   per-vertex incidence lists, cached edge sizes) behind transversal checks, DNF
//!   evaluation, and [`Hypergraph::edges_containing`];
//! * [`Hypergraph`] — simple hypergraphs, transversal predicates, the restriction
//!   operations `G_S` / `H_S` used by the Boros–Makino decomposition, complements, and
//!   frequency queries;
//! * [`transversal`] — exact dualization (Berge multiplication) used as ground truth,
//!   incremental dualization, and brute-force witnesses;
//! * [`MonotoneDnf`] — the formula-side view of the `DUAL` problem and the trivial
//!   reductions between DNFs and hypergraphs;
//! * [`generators`] — families with analytically known duals, random instances, and
//!   perturbations, used by tests, examples, and the experiment harness.
//!
//! Higher layers: `qld-core` implements the paper's quadratic-logspace decomposition on
//! top of these types; `qld-fk` implements the classical baselines; the application
//! crates (`qld-datamining`, `qld-keys`, `qld-coteries`) encode the reductions of
//! Propositions 1.1–1.3.

#![cfg_attr(all(not(feature = "std"), not(test)), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

extern crate alloc;

pub mod dnf;
pub mod error;
pub mod format;
pub mod generators;
mod hypergraph;
pub mod index;
pub mod transversal;
mod vertex;
mod vset;

pub use dnf::MonotoneDnf;
pub use error::HypergraphError;
pub use hypergraph::Hypergraph;
pub use index::{HypergraphIndex, ProbeClass};
pub use vertex::Vertex;
pub use vset::{VertexSet, INLINE_BITS};
