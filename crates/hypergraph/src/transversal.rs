//! Exact computation of minimal transversals (hypergraph dualization).
//!
//! The routines here are the *exponential* ground truth of the repository: Berge
//! multiplication with absorption computes `tr(H)` exactly, and
//! [`are_dual_exact`] / [`find_new_transversal_brute`] decide duality and exhibit
//! witnesses by exhaustive means.  They are what the polylog-space algorithms of
//! `qld-core` and the quasi-polynomial baselines of `qld-fk` are validated against in
//! tests, and they serve as the "exact" baseline series in the experiment tables.

use crate::hypergraph::Hypergraph;
use crate::vset::VertexSet;
use alloc::vec;
use alloc::vec::Vec;

/// Computes the set of all minimal transversals `tr(H)` by Berge multiplication.
///
/// Conventions (standard, and consistent with the paper's use of duality):
/// * `tr(∅)` (no edges) is `{∅}` — the hypergraph with a single empty edge;
/// * if `H` contains an empty edge, `tr(H)` is the empty hypergraph (no transversals).
///
/// The intermediate families are minimized after every edge, which keeps the procedure
/// practical for the moderate instance sizes used in tests and experiments.
pub fn minimal_transversals(h: &Hypergraph) -> Hypergraph {
    let n = h.num_vertices();
    if h.has_empty_edge() {
        return Hypergraph::new(n);
    }
    // Start with the family {∅}: the minimal transversals of the edgeless hypergraph.
    let mut current: Vec<VertexSet> = vec![VertexSet::empty(n)];
    for edge in h.edges() {
        let mut next: Vec<VertexSet> = Vec::new();
        for t in &current {
            if t.intersects(edge) {
                push_minimal(&mut next, t.clone());
            } else {
                for v in edge.iter() {
                    push_minimal(&mut next, t.with(v));
                }
            }
        }
        current = next;
    }
    Hypergraph::from_edges(n, current)
}

/// Inserts `candidate` into `family` keeping the family an antichain (minimal sets only).
fn push_minimal(family: &mut Vec<VertexSet>, candidate: VertexSet) {
    let mut i = 0;
    while i < family.len() {
        if family[i].is_subset(&candidate) {
            return; // candidate is dominated (or duplicate)
        }
        if candidate.is_subset(&family[i]) {
            family.swap_remove(i);
        } else {
            i += 1;
        }
    }
    family.push(candidate);
}

/// Exact duality test: are `g` and `h` dual, i.e. is `g = tr(h)` (as edge sets)?
///
/// Both inputs are minimized first, mirroring the paper's assumption that instances are
/// given as irredundant DNFs / simple hypergraphs.
pub fn are_dual_exact(g: &Hypergraph, h: &Hypergraph) -> bool {
    let g = g.minimize();
    let h = h.minimize();
    let tr_h = minimal_transversals(&h);
    tr_h.same_edge_set(&g)
}

/// Finds a *new transversal of `g` with respect to `h`* (a transversal of `g` containing
/// no edge of `h`) by brute-force search over all subsets, smallest first.
///
/// Only intended for small universes (≤ ~24 vertices); returns `None` if none exists —
/// which, under the precondition `h ⊆ tr(g)`, certifies `h = tr(g)`.
pub fn find_new_transversal_brute(g: &Hypergraph, h: &Hypergraph) -> Option<VertexSet> {
    let n = g.num_vertices().max(h.num_vertices());
    assert!(n <= 26, "brute-force witness search limited to 26 vertices");
    let mut subsets: Vec<u32> = (0u32..(1u32 << n)).collect();
    subsets.sort_by_key(|m| m.count_ones());
    for mask in subsets {
        let t = VertexSet::from_bits(n, mask as u64);
        if g.is_new_transversal(h, &t) {
            return Some(t);
        }
    }
    None
}

/// Incrementally maintained dualization: keeps `tr(H)` up to date as edges are added.
///
/// This mirrors how dualization is used in the data-mining loop (Section 1): borders are
/// grown one set at a time and the transversal family must follow.
#[derive(Clone, Debug)]
pub struct IncrementalTransversals {
    num_vertices: usize,
    edges: Vec<VertexSet>,
    transversals: Vec<VertexSet>,
}

impl IncrementalTransversals {
    /// Creates the dualizer for an edgeless hypergraph over `num_vertices` vertices
    /// (whose transversal family is `{∅}`).
    pub fn new(num_vertices: usize) -> Self {
        IncrementalTransversals {
            num_vertices,
            edges: Vec::new(),
            transversals: vec![VertexSet::empty(num_vertices)],
        }
    }

    /// Adds a hyperedge and updates the minimal transversal family.
    pub fn add_edge(&mut self, edge: VertexSet) {
        let mut next: Vec<VertexSet> = Vec::new();
        if edge.is_empty() {
            // No set can meet an empty edge.
            self.transversals.clear();
            self.edges.push(edge);
            return;
        }
        for t in &self.transversals {
            if t.intersects(&edge) {
                push_minimal(&mut next, t.clone());
            } else {
                for v in edge.iter() {
                    push_minimal(&mut next, t.with(v));
                }
            }
        }
        self.transversals = next;
        self.edges.push(edge);
    }

    /// The edges added so far.
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::from_edges(self.num_vertices, self.edges.iter().cloned())
    }

    /// The current minimal transversal family.
    pub fn transversals(&self) -> Hypergraph {
        Hypergraph::from_edges(self.num_vertices, self.transversals.iter().cloned())
    }
}

/// Enumerates **all** transversals (not only minimal ones) of `h` within the universe —
/// exponential, used only in tests on tiny instances.
pub fn all_transversals_brute(h: &Hypergraph) -> Vec<VertexSet> {
    let n = h.num_vertices();
    assert!(n <= 20, "brute-force enumeration limited to 20 vertices");
    let mut out = Vec::new();
    for t in VertexSet::all_subsets(n) {
        if h.is_transversal(&t) {
            out.push(t);
        }
    }
    out
}

/// Checks `g ⊆ tr(h)`: every edge of `g` is a **minimal** transversal of `h`.
/// Returns the index of the first violating edge, if any.
pub fn subset_of_transversals(g: &Hypergraph, h: &Hypergraph) -> Result<(), usize> {
    for (i, e) in g.edges().iter().enumerate() {
        if !h.is_minimal_transversal(e) {
            return Err(i);
        }
    }
    Ok(())
}

/// The self-duality test `tr(h) = h`, used by the coterie application (Prop. 1.3).
pub fn is_self_dual_exact(h: &Hypergraph) -> bool {
    are_dual_exact(h, h)
}

/// A convenient bundle: for a hypergraph `h`, return `(tr(h), |tr(h)|)` along with basic
/// statistics used by the experiment harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualizationStats {
    /// Number of edges of the input.
    pub input_edges: usize,
    /// Number of minimal transversals.
    pub output_edges: usize,
    /// Largest minimal transversal.
    pub max_transversal_size: usize,
}

/// Computes `tr(h)` together with [`DualizationStats`].
pub fn dualize_with_stats(h: &Hypergraph) -> (Hypergraph, DualizationStats) {
    let tr = minimal_transversals(h);
    let stats = DualizationStats {
        input_edges: h.num_edges(),
        output_edges: tr.num_edges(),
        max_transversal_size: tr.max_edge_size(),
    };
    (tr, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vset;

    #[test]
    fn triangle_transversals_are_pairs() {
        let k3 = Hypergraph::from_index_edges(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        let tr = minimal_transversals(&k3);
        assert_eq!(tr.num_edges(), 3);
        assert!(tr.contains_edge(&vset![3; 0, 1]));
        assert!(tr.contains_edge(&vset![3; 1, 2]));
        assert!(tr.contains_edge(&vset![3; 0, 2]));
        // K3's edge set is self-dual
        assert!(is_self_dual_exact(&k3));
    }

    #[test]
    fn path_graph_transversals() {
        // Path 0-1-2-3: edges {0,1},{1,2},{2,3}; minimal vertex covers: {1,2},{1,3},{0,2}
        let p4 = Hypergraph::from_index_edges(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let tr = minimal_transversals(&p4);
        assert_eq!(tr.num_edges(), 3);
        assert!(tr.contains_edge(&vset![4; 1, 2]));
        assert!(tr.contains_edge(&vset![4; 1, 3]));
        assert!(tr.contains_edge(&vset![4; 0, 2]));
    }

    #[test]
    fn degenerate_conventions() {
        let empty = Hypergraph::new(3);
        let tr = minimal_transversals(&empty);
        assert_eq!(tr.num_edges(), 1);
        assert!(tr.edge(0).is_empty());

        let with_empty_edge = Hypergraph::from_edges(3, [VertexSet::empty(3)]);
        let tr2 = minimal_transversals(&with_empty_edge);
        assert_eq!(tr2.num_edges(), 0);

        // Round trip between the two degenerate duals.
        assert!(are_dual_exact(&tr, &empty));
    }

    #[test]
    fn double_dualization_is_identity_on_simple_hypergraphs() {
        let h = Hypergraph::from_index_edges(5, &[&[0, 1], &[2, 3, 4], &[1, 4]]);
        let h = h.minimize();
        let tr = minimal_transversals(&h);
        let back = minimal_transversals(&tr);
        assert!(back.same_edge_set(&h));
    }

    #[test]
    fn duality_of_matching_pair() {
        // G = {{0,1},{2,3}}, tr(G) = {{0,2},{0,3},{1,2},{1,3}}
        let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let tr = minimal_transversals(&g);
        assert_eq!(tr.num_edges(), 4);
        assert!(are_dual_exact(&tr, &g));
        assert!(are_dual_exact(&g, &tr));
        // dropping an edge of the dual breaks duality
        let mut broken = tr.clone();
        broken.remove_edge(0);
        assert!(!are_dual_exact(&broken, &g));
    }

    #[test]
    fn new_transversal_brute_finds_witness_exactly_when_not_dual() {
        let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let full_dual = minimal_transversals(&g);
        assert!(find_new_transversal_brute(&g, &full_dual).is_none());
        let mut partial = full_dual.clone();
        let removed = partial.remove_edge(2);
        let w = find_new_transversal_brute(&g, &partial).expect("witness must exist");
        assert!(g.is_new_transversal(&partial, &w));
        // the witness must contain the missing minimal transversal (here: equal or superset)
        assert!(removed.is_subset(&w) || g.is_transversal(&w));
    }

    #[test]
    fn incremental_matches_batch() {
        let edges: Vec<VertexSet> = vec![
            vset![5; 0, 1],
            vset![5; 1, 2, 3],
            vset![5; 3, 4],
            vset![5; 0, 4],
        ];
        let mut inc = IncrementalTransversals::new(5);
        for e in &edges {
            inc.add_edge(e.clone());
        }
        let batch = minimal_transversals(&Hypergraph::from_edges(5, edges));
        assert!(inc.transversals().same_edge_set(&batch));
        assert_eq!(inc.hypergraph().num_edges(), 4);
    }

    #[test]
    fn incremental_empty_edge_kills_all_transversals() {
        let mut inc = IncrementalTransversals::new(3);
        inc.add_edge(vset![3; 0]);
        inc.add_edge(VertexSet::empty(3));
        assert_eq!(inc.transversals().num_edges(), 0);
    }

    #[test]
    fn all_transversals_brute_counts() {
        let h = Hypergraph::from_index_edges(2, &[&[0, 1]]);
        // subsets meeting {0,1}: {0},{1},{0,1}
        assert_eq!(all_transversals_brute(&h).len(), 3);
    }

    #[test]
    fn subset_of_transversals_check() {
        let g = Hypergraph::from_index_edges(3, &[&[0, 1], &[1, 2], &[0, 2]]);
        let tr = minimal_transversals(&g);
        assert!(subset_of_transversals(&tr, &g).is_ok());
        let bad = Hypergraph::from_index_edges(3, &[&[0, 1, 2]]);
        assert_eq!(subset_of_transversals(&bad, &g), Err(0));
    }

    #[test]
    fn stats_report() {
        let h = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
        let (tr, stats) = dualize_with_stats(&h);
        assert_eq!(stats.input_edges, 2);
        assert_eq!(stats.output_edges, 4);
        assert_eq!(stats.max_transversal_size, 2);
        assert_eq!(tr.num_edges(), 4);
    }

    #[test]
    fn transversals_of_single_edge() {
        let h = Hypergraph::from_index_edges(4, &[&[1, 3]]);
        let tr = minimal_transversals(&h);
        assert_eq!(tr.num_edges(), 2);
        assert!(tr.contains_edge(&vset![4; 1]));
        assert!(tr.contains_edge(&vset![4; 3]));
    }
}
