//! Vertices of hypergraphs.
//!
//! A vertex is a small non-negative integer index into the vertex universe of a
//! [`crate::Hypergraph`].  Using a newtype (rather than a bare `usize`) keeps vertex
//! indices from being confused with edge indices or attribute positions in the
//! surrounding code, at zero runtime cost.

use core::fmt;

/// A vertex identifier.
///
/// Vertices are dense indices `0..n` into the universe of a hypergraph.  In the data
/// mining view (Section 1 of the paper) a vertex is an *item* / attribute of a
/// Boolean-valued relation; in the relational-key view it is an attribute of a relation
/// schema; in the coterie view it is a node of a distributed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vertex(pub u32);

impl Vertex {
    /// Creates a vertex from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Vertex(index)
    }

    /// Returns the raw index of the vertex.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Vertex {
    #[inline]
    fn from(v: u32) -> Self {
        Vertex(v)
    }
}

impl From<usize> for Vertex {
    #[inline]
    fn from(v: usize) -> Self {
        Vertex(v as u32)
    }
}

impl From<Vertex> for usize {
    #[inline]
    fn from(v: Vertex) -> Self {
        v.index()
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_index() {
        let v = Vertex::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(usize::from(v), 7);
        assert_eq!(Vertex::from(7usize), v);
        assert_eq!(Vertex::from(7u32), v);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Vertex::new(3).to_string(), "v3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Vertex::new(1) < Vertex::new(2));
        assert_eq!(Vertex::new(5), Vertex::new(5));
    }
}
