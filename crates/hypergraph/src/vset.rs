//! Dense bit-set representation of vertex sets.
//!
//! Hyperedges, transversals, itemsets, keys and quorums are all subsets of a small
//! universe `0..n`.  [`VertexSet`] stores such a subset as a vector of 64-bit words so
//! that the set operations the duality algorithms perform in their inner loops
//! (intersection tests, subset tests, differences) run over machine words.

use crate::vertex::Vertex;
use std::cmp::Ordering;
use std::fmt;

const WORD_BITS: usize = 64;

/// A subset of a vertex universe `{0, 1, …, capacity-1}`, stored as a bitmap.
///
/// The set remembers the universe size it was created with (`capacity`); all binary
/// operations require both operands to share that universe, which is checked with a
/// debug assertion.  The capacity is deliberately *not* part of equality: two sets with
/// the same members compare equal even if allocated for different universes, which makes
/// restriction operations (`G_S`, `H_S` from the paper) straightforward.
#[derive(Clone, Eq, serde::Serialize, serde::Deserialize)]
pub struct VertexSet {
    words: Vec<u64>,
    capacity: usize,
}

impl VertexSet {
    /// Creates an empty set over a universe of `capacity` vertices.
    pub fn empty(capacity: usize) -> Self {
        let n_words = capacity.div_ceil(WORD_BITS).max(1);
        VertexSet {
            words: vec![0; n_words],
            capacity,
        }
    }

    /// Creates the full set `{0, …, capacity-1}`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::empty(capacity);
        for i in 0..capacity {
            s.insert(Vertex::from(i));
        }
        s
    }

    /// Creates a set from an iterator of vertex indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, iter: I) -> Self {
        let mut s = Self::empty(capacity);
        for i in iter {
            s.insert(Vertex::from(i));
        }
        s
    }

    /// Creates a singleton set `{v}`.
    pub fn singleton(capacity: usize, v: Vertex) -> Self {
        let mut s = Self::empty(capacity);
        s.insert(v);
        s
    }

    /// The universe size this set was allocated for.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds a vertex; returns `true` if it was newly inserted.
    pub fn insert(&mut self, v: Vertex) -> bool {
        let i = v.index();
        assert!(
            i < self.capacity,
            "vertex {i} out of range for universe of size {}",
            self.capacity
        );
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes a vertex; returns `true` if it was present.
    pub fn remove(&mut self, v: Vertex) -> bool {
        let i = v.index();
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        let i = v.index();
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(Vertex::from(wi * WORD_BITS + b))
                }
            })
        })
    }

    /// Returns the members as a sorted `Vec` of raw indices.
    pub fn to_indices(&self) -> Vec<usize> {
        self.iter().map(|v| v.index()).collect()
    }

    /// The smallest member, if any.
    pub fn min_vertex(&self) -> Option<Vertex> {
        self.iter().next()
    }

    /// The largest member, if any.
    pub fn max_vertex(&self) -> Option<Vertex> {
        for (wi, &word) in self.words.iter().enumerate().rev() {
            if word != 0 {
                let b = 63 - word.leading_zeros() as usize;
                return Some(Vertex::from(wi * WORD_BITS + b));
            }
        }
        None
    }

    fn check_compat(&self, other: &VertexSet) {
        debug_assert_eq!(
            self.words.len(),
            other.words.len(),
            "vertex sets over different universes ({} vs {})",
            self.capacity,
            other.capacity
        );
    }

    /// Set union `self ∪ other`.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        self.check_compat(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        VertexSet {
            words,
            capacity: self.capacity.max(other.capacity),
        }
    }

    /// Set intersection `self ∩ other`.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        self.check_compat(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        VertexSet {
            words,
            capacity: self.capacity.max(other.capacity),
        }
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        self.check_compat(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & !b)
            .collect();
        VertexSet {
            words,
            capacity: self.capacity,
        }
    }

    /// Complement with respect to the universe `{0, …, universe-1}`.
    pub fn complement(&self, universe: usize) -> VertexSet {
        let mut out = VertexSet::empty(universe);
        for i in 0..universe {
            let v = Vertex::from(i);
            if !self.contains(v) {
                out.insert(v);
            }
        }
        out
    }

    /// Whether the two sets share at least one element.
    pub fn intersects(&self, other: &VertexSet) -> bool {
        self.check_compat(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &VertexSet) -> bool {
        self.check_compat(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether `self ⊂ other` (proper subset).
    pub fn is_proper_subset(&self, other: &VertexSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// Whether `self ⊇ other`.
    pub fn is_superset(&self, other: &VertexSet) -> bool {
        other.is_subset(self)
    }

    /// Whether the sets are disjoint.
    pub fn is_disjoint(&self, other: &VertexSet) -> bool {
        !self.intersects(other)
    }

    /// Number of elements shared with `other`.
    pub fn intersection_len(&self, other: &VertexSet) -> usize {
        self.check_compat(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &VertexSet) {
        self.check_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &VertexSet) {
        self.check_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference.
    pub fn subtract(&mut self, other: &VertexSet) {
        self.check_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `self − {v}` as a fresh set.
    pub fn without(&self, v: Vertex) -> VertexSet {
        let mut s = self.clone();
        s.remove(v);
        s
    }

    /// Returns `self ∪ {v}` as a fresh set.
    pub fn with(&self, v: Vertex) -> VertexSet {
        let mut s = self.clone();
        if v.index() >= s.capacity {
            s.grow(v.index() + 1);
        }
        s.insert(v);
        s
    }

    /// Grows the universe to at least `capacity` (members are preserved).
    pub fn grow(&mut self, capacity: usize) {
        if capacity > self.capacity {
            self.capacity = capacity;
            let n_words = capacity.div_ceil(WORD_BITS).max(1);
            self.words.resize(n_words, 0);
        }
    }

    /// Lexicographic comparison by sorted member lists (used by the deterministic
    /// tie-breaking rules fixed in Section 2 of the paper).
    pub fn lex_cmp(&self, other: &VertexSet) -> Ordering {
        let mut a = self.iter();
        let mut b = other.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(x), Some(y)) => match x.cmp(&y) {
                    Ordering::Equal => continue,
                    ord => return ord,
                },
            }
        }
    }

    /// Encoded length in bits when the set is written down as a bitmap over its
    /// universe.  Used by the experiment harness when reporting input sizes.
    pub fn encoding_bits(&self) -> usize {
        self.capacity
    }
}

impl PartialEq for VertexSet {
    fn eq(&self, other: &Self) -> bool {
        let max_words = self.words.len().max(other.words.len());
        for i in 0..max_words {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            if a != b {
                return false;
            }
        }
        true
    }
}

impl std::hash::Hash for VertexSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash only up to the last non-zero word so that equal sets over different
        // universes hash identically (consistent with PartialEq).
        let mut last = self.words.len();
        while last > 0 && self.words[last - 1] == 0 {
            last -= 1;
        }
        self.words[..last].hash(state);
    }
}

impl PartialOrd for VertexSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VertexSet {
    fn cmp(&self, other: &Self) -> Ordering {
        self.lex_cmp(other)
    }
}

impl fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", v.0)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Vertex> for VertexSet {
    /// Collects vertices into a set whose capacity is just large enough.
    fn from_iter<T: IntoIterator<Item = Vertex>>(iter: T) -> Self {
        let items: Vec<Vertex> = iter.into_iter().collect();
        let cap = items.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut s = VertexSet::empty(cap);
        for v in items {
            s.insert(v);
        }
        s
    }
}

/// Convenience macro for building a [`VertexSet`] in tests and examples:
/// `vset![capacity; 0, 2, 5]`.
#[macro_export]
macro_rules! vset {
    ($cap:expr $(;)?) => {
        $crate::VertexSet::empty($cap)
    };
    ($cap:expr; $($v:expr),* $(,)?) => {{
        let mut s = $crate::VertexSet::empty($cap);
        $( s.insert($crate::Vertex::from($v as usize)); )*
        s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = VertexSet::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = VertexSet::full(10);
        assert_eq!(f.len(), 10);
        assert!(f.contains(Vertex::new(0)));
        assert!(f.contains(Vertex::new(9)));
        assert!(!f.contains(Vertex::new(10)));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = VertexSet::empty(70);
        assert!(s.insert(Vertex::new(3)));
        assert!(!s.insert(Vertex::new(3)));
        assert!(s.insert(Vertex::new(65)));
        assert!(s.contains(Vertex::new(3)));
        assert!(s.contains(Vertex::new(65)));
        assert!(!s.contains(Vertex::new(64)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(Vertex::new(3)));
        assert!(!s.remove(Vertex::new(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = VertexSet::from_indices(130, [5, 0, 127, 64, 63]);
        assert_eq!(s.to_indices(), vec![0, 5, 63, 64, 127]);
        assert_eq!(s.min_vertex(), Some(Vertex::new(0)));
        assert_eq!(s.max_vertex(), Some(Vertex::new(127)));
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_indices(10, [0, 1, 2, 3]);
        let b = VertexSet::from_indices(10, [2, 3, 4, 5]);
        assert_eq!(a.union(&b).to_indices(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).to_indices(), vec![2, 3]);
        assert_eq!(a.difference(&b).to_indices(), vec![0, 1]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_len(&b), 2);
        let c = VertexSet::from_indices(10, [7, 8]);
        assert!(!a.intersects(&c));
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn subset_relations() {
        let a = VertexSet::from_indices(10, [1, 2]);
        let b = VertexSet::from_indices(10, [1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn complement_with_respect_to_universe() {
        let a = VertexSet::from_indices(5, [0, 2]);
        assert_eq!(a.complement(5).to_indices(), vec![1, 3, 4]);
        assert_eq!(
            VertexSet::empty(3).complement(3).to_indices(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn equality_ignores_capacity() {
        let a = VertexSet::from_indices(5, [1, 2]);
        let b = VertexSet::from_indices(100, [1, 2]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn lexicographic_order() {
        let a = VertexSet::from_indices(10, [0, 5]);
        let b = VertexSet::from_indices(10, [0, 6]);
        let c = VertexSet::from_indices(10, [0]);
        assert_eq!(a.lex_cmp(&b), Ordering::Less);
        assert_eq!(b.lex_cmp(&a), Ordering::Greater);
        assert_eq!(c.lex_cmp(&a), Ordering::Less); // prefix is smaller
        assert_eq!(a.lex_cmp(&a), Ordering::Equal);
        assert!(a < b);
    }

    #[test]
    fn with_and_without() {
        let a = VertexSet::from_indices(10, [1, 2]);
        assert_eq!(a.with(Vertex::new(5)).to_indices(), vec![1, 2, 5]);
        assert_eq!(a.without(Vertex::new(1)).to_indices(), vec![2]);
        // original untouched
        assert_eq!(a.to_indices(), vec![1, 2]);
    }

    #[test]
    fn grow_preserves_members() {
        let mut a = VertexSet::from_indices(4, [0, 3]);
        a.grow(200);
        assert!(a.contains(Vertex::new(3)));
        a.insert(Vertex::new(190));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn from_iterator_and_macro() {
        let s: VertexSet = [Vertex::new(2), Vertex::new(4)].into_iter().collect();
        assert_eq!(s.to_indices(), vec![2, 4]);
        let m = vset![8; 1, 3, 5];
        assert_eq!(m.to_indices(), vec![1, 3, 5]);
        let e = vset![8];
        assert!(e.is_empty());
    }

    #[test]
    fn in_place_operations() {
        let mut a = VertexSet::from_indices(10, [0, 1, 2]);
        let b = VertexSet::from_indices(10, [1, 2, 3]);
        a.union_with(&b);
        assert_eq!(a.to_indices(), vec![0, 1, 2, 3]);
        a.intersect_with(&b);
        assert_eq!(a.to_indices(), vec![1, 2, 3]);
        a.subtract(&VertexSet::from_indices(10, [3]));
        assert_eq!(a.to_indices(), vec![1, 2]);
    }

    #[test]
    fn display_format() {
        let s = VertexSet::from_indices(10, [1, 4]);
        assert_eq!(format!("{s}"), "{1,4}");
        assert_eq!(format!("{:?}", VertexSet::empty(3)), "{}");
    }
}
