//! Dense bit-set representation of vertex sets, small-set optimized.
//!
//! Hyperedges, transversals, itemsets, keys and quorums are all subsets of a small
//! universe `0..n`.  [`VertexSet`] stores such a subset as a bitmap so that the set
//! operations the duality algorithms perform in their inner loops (intersection tests,
//! subset tests, differences) run over machine words.
//!
//! # Data layout
//!
//! Universes of at most [`INLINE_BITS`] vertices — the common case in every generator
//! and experiment of this repository — are stored **inline** as a single `u64` word with
//! no heap allocation, so cloning, `with`/`without`, and all binary operations are plain
//! register copies.  Larger universes transparently **spill** to a `Vec<u64>`; the two
//! representations are interchangeable (equality, hashing and ordering ignore both the
//! representation and the declared capacity).  [`VertexSet::grow`] across the
//! `INLINE_BITS` boundary converts inline sets to spilled ones in place.

use crate::vertex::Vertex;
use alloc::vec;
use alloc::vec::Vec;
use core::cmp::Ordering;
use core::fmt;

const WORD_BITS: usize = 64;

/// Largest universe size stored inline (one machine word, no heap allocation).
pub const INLINE_BITS: usize = WORD_BITS;

/// The backing words: one inline `u64` for universes `≤ 64`, a heap vector beyond.
///
/// Invariant maintained by every constructor and mutator: bits at positions
/// `>= capacity` are zero, and the representation is `Inline` exactly when
/// `capacity <= INLINE_BITS`.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
enum Repr {
    Inline(u64),
    Spilled(Vec<u64>),
}

/// A subset of a vertex universe `{0, 1, …, capacity-1}`, stored as a bitmap.
///
/// The set remembers the universe size it was created with (`capacity`).  The capacity
/// is deliberately *not* part of equality: two sets with the same members compare equal
/// even if allocated for different universes, which makes restriction operations
/// (`G_S`, `H_S` from the paper) straightforward.
///
/// # Capacity of binary operations
///
/// All out-of-place binary operations — [`union`](VertexSet::union),
/// [`intersection`](VertexSet::intersection), [`difference`](VertexSet::difference) —
/// accept operands over different universes and return a set over the **larger** of the
/// two (`max(self.capacity, other.capacity)`); members of the missing tail of the
/// smaller operand are treated as absent.  The in-place variants grow `self` to the
/// larger universe first where the operation could need it (`union_with`) and otherwise
/// keep `self`'s capacity.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct VertexSet {
    repr: Repr,
    capacity: usize,
}

impl core::cmp::Eq for VertexSet {}

/// Number of words needed for a universe of `capacity` bits (at least one).
#[inline]
fn words_for(capacity: usize) -> usize {
    capacity.div_ceil(WORD_BITS).max(1)
}

/// Mask of the valid bits of the last word of a universe of `capacity` bits.
#[inline]
fn tail_mask(capacity: usize) -> u64 {
    let rem = capacity % WORD_BITS;
    if rem == 0 && capacity > 0 {
        u64::MAX
    } else if capacity == 0 {
        0
    } else {
        (1u64 << rem) - 1
    }
}

impl VertexSet {
    /// Creates an empty set over a universe of `capacity` vertices.
    #[inline]
    pub fn empty(capacity: usize) -> Self {
        let repr = if capacity <= INLINE_BITS {
            Repr::Inline(0)
        } else {
            Repr::Spilled(vec![0; words_for(capacity)])
        };
        VertexSet { repr, capacity }
    }

    /// Creates the full set `{0, …, capacity-1}` (word-wise, no per-bit loop).
    pub fn full(capacity: usize) -> Self {
        let repr = if capacity <= INLINE_BITS {
            Repr::Inline(tail_mask(capacity))
        } else {
            let n_words = words_for(capacity);
            let mut words = vec![u64::MAX; n_words];
            words[n_words - 1] = tail_mask(capacity);
            Repr::Spilled(words)
        };
        VertexSet { repr, capacity }
    }

    /// Creates a set over `capacity ≤ 64` vertices directly from a bitmask; bits at
    /// positions `>= capacity` are ignored.  This is the allocation-free constructor
    /// the brute-force subset enumerations use instead of per-bit insertion loops.
    #[inline]
    pub fn from_bits(capacity: usize, bits: u64) -> Self {
        assert!(
            capacity <= INLINE_BITS,
            "from_bits is limited to universes of {INLINE_BITS} vertices (got {capacity})"
        );
        VertexSet {
            repr: Repr::Inline(bits & tail_mask(capacity)),
            capacity,
        }
    }

    /// Iterates **every** subset of an `n`-vertex universe in mask order
    /// (`∅` first, the full set last).  This is the one shared enumeration
    /// behind the exhaustive ground-truth loops — all transversals, semantic
    /// DNF duality, itemset borders, minimal keys — which each add their own
    /// (tighter) size guard before walking the `2ⁿ` sets.
    ///
    /// Panics if `n` exceeds 24: a larger universe means at least 16M
    /// iterations, past which the algorithmic solvers must be used instead.
    pub fn all_subsets(n: usize) -> impl Iterator<Item = VertexSet> + Clone {
        assert!(
            n <= 24,
            "exhaustive subset enumeration limited to 24 vertices"
        );
        (0u64..(1u64 << n)).map(move |mask| VertexSet::from_bits(n, mask))
    }

    /// The set's members as a single bitmask, when the universe fits one word.
    #[inline]
    pub fn as_bits(&self) -> Option<u64> {
        match &self.repr {
            Repr::Inline(w) => Some(*w),
            Repr::Spilled(_) => None,
        }
    }

    /// The backing words, lowest word first (vertex `i` is bit `i % 64` of word
    /// `i / 64`).  Inline sets yield a one-word slice.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => core::slice::from_ref(w),
            Repr::Spilled(words) => words,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(w) => core::slice::from_mut(w),
            Repr::Spilled(words) => words,
        }
    }

    /// The `i`-th backing word, or `0` beyond the allocated words.
    #[inline]
    fn word(&self, i: usize) -> u64 {
        self.as_words().get(i).copied().unwrap_or(0)
    }

    /// Creates a set from an iterator of vertex indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, iter: I) -> Self {
        let mut s = Self::empty(capacity);
        for i in iter {
            s.insert(Vertex::from(i));
        }
        s
    }

    /// Creates a singleton set `{v}`.
    pub fn singleton(capacity: usize, v: Vertex) -> Self {
        let mut s = Self::empty(capacity);
        s.insert(v);
        s
    }

    /// The universe size this set was allocated for.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline(w) => w.count_ones() as usize,
            Repr::Spilled(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Whether the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Inline(w) => *w == 0,
            Repr::Spilled(words) => words.iter().all(|&w| w == 0),
        }
    }

    /// Adds a vertex; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: Vertex) -> bool {
        let i = v.index();
        assert!(
            i < self.capacity,
            "vertex {i} out of range for universe of size {}",
            self.capacity
        );
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let word = &mut self.words_mut()[w];
        let had = *word & (1 << b) != 0;
        *word |= 1 << b;
        !had
    }

    /// Removes a vertex; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: Vertex) -> bool {
        let i = v.index();
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let word = &mut self.words_mut()[w];
        let had = *word & (1 << b) != 0;
        *word &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        let i = v.index();
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.word(w) & (1 << b) != 0
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.as_words().iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            core::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(Vertex::from(wi * WORD_BITS + b))
                }
            })
        })
    }

    /// Returns the members as a sorted `Vec` of raw indices.
    pub fn to_indices(&self) -> Vec<usize> {
        self.iter().map(|v| v.index()).collect()
    }

    /// The smallest member, if any.
    pub fn min_vertex(&self) -> Option<Vertex> {
        self.iter().next()
    }

    /// The largest member, if any.
    pub fn max_vertex(&self) -> Option<Vertex> {
        for (wi, &word) in self.as_words().iter().enumerate().rev() {
            if word != 0 {
                let b = 63 - word.leading_zeros() as usize;
                return Some(Vertex::from(wi * WORD_BITS + b));
            }
        }
        None
    }

    /// Builds the result of a word-wise binary operation over the larger universe.
    #[inline]
    fn zip_words(&self, other: &VertexSet, f: impl Fn(u64, u64) -> u64) -> VertexSet {
        let capacity = self.capacity.max(other.capacity);
        if capacity <= INLINE_BITS {
            VertexSet {
                repr: Repr::Inline(f(self.word(0), other.word(0))),
                capacity,
            }
        } else {
            let words = (0..words_for(capacity))
                .map(|i| f(self.word(i), other.word(i)))
                .collect();
            VertexSet {
                repr: Repr::Spilled(words),
                capacity,
            }
        }
    }

    /// Set union `self ∪ other` over the larger of the two universes.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        self.zip_words(other, |a, b| a | b)
    }

    /// Set intersection `self ∩ other` over the larger of the two universes.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        self.zip_words(other, |a, b| a & b)
    }

    /// Set difference `self − other` over the larger of the two universes.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        self.zip_words(other, |a, b| a & !b)
    }

    /// Complement with respect to the universe `{0, …, universe-1}`, computed word-wise.
    /// Members of `self` at positions `>= universe` (possible when `self` was allocated
    /// for a larger universe) are ignored.
    pub fn complement(&self, universe: usize) -> VertexSet {
        let mut out = VertexSet::full(universe);
        for (i, word) in out.words_mut().iter_mut().enumerate() {
            *word &= !self.word(i);
        }
        out
    }

    /// Whether the two sets share at least one element.
    #[inline]
    pub fn intersects(&self, other: &VertexSet) -> bool {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &other.repr) {
            return a & b != 0;
        }
        let (a, b) = (self.as_words(), other.as_words());
        let common = a.len().min(b.len());
        a[..common]
            .iter()
            .zip(&b[..common])
            .any(|(x, y)| x & y != 0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &VertexSet) -> bool {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &other.repr) {
            return a & !b == 0;
        }
        let b = other.as_words();
        self.as_words()
            .iter()
            .enumerate()
            .all(|(i, &a)| a & !b.get(i).copied().unwrap_or(0) == 0)
    }

    /// Whether `self ⊂ other` (proper subset).
    pub fn is_proper_subset(&self, other: &VertexSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// Whether `self ⊇ other`.
    pub fn is_superset(&self, other: &VertexSet) -> bool {
        other.is_subset(self)
    }

    /// Whether the sets are disjoint.
    #[inline]
    pub fn is_disjoint(&self, other: &VertexSet) -> bool {
        !self.intersects(other)
    }

    /// Number of elements shared with `other`.
    #[inline]
    pub fn intersection_len(&self, other: &VertexSet) -> usize {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.repr, &other.repr) {
            return (a & b).count_ones() as usize;
        }
        let (a, b) = (self.as_words(), other.as_words());
        let common = a.len().min(b.len());
        a[..common]
            .iter()
            .zip(&b[..common])
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// In-place union.  Grows `self` to `other`'s universe first when `other` is the
    /// larger one, so no member of `other` is lost.
    pub fn union_with(&mut self, other: &VertexSet) {
        if other.capacity > self.capacity {
            self.grow(other.capacity);
        }
        for (i, a) in self.words_mut().iter_mut().enumerate() {
            *a |= other.word(i);
        }
    }

    /// In-place intersection (keeps `self`'s capacity; the result is a subset of
    /// `self`, so nothing can be lost).
    pub fn intersect_with(&mut self, other: &VertexSet) {
        for (i, a) in self.words_mut().iter_mut().enumerate() {
            *a &= other.word(i);
        }
    }

    /// In-place difference (keeps `self`'s capacity).
    pub fn subtract(&mut self, other: &VertexSet) {
        for (i, a) in self.words_mut().iter_mut().enumerate() {
            *a &= !other.word(i);
        }
    }

    /// Returns `self − {v}` as a fresh set.
    pub fn without(&self, v: Vertex) -> VertexSet {
        let mut s = self.clone();
        s.remove(v);
        s
    }

    /// Returns `self ∪ {v}` as a fresh set.
    pub fn with(&self, v: Vertex) -> VertexSet {
        let mut s = self.clone();
        if v.index() >= s.capacity {
            s.grow(v.index() + 1);
        }
        s.insert(v);
        s
    }

    /// Grows the universe to at least `capacity` (members are preserved).  Growing past
    /// [`INLINE_BITS`] spills the inline word to the heap representation.
    pub fn grow(&mut self, capacity: usize) {
        if capacity <= self.capacity {
            return;
        }
        self.capacity = capacity;
        if capacity <= INLINE_BITS {
            return; // still one word
        }
        let n_words = words_for(capacity);
        match &mut self.repr {
            Repr::Inline(w) => {
                let mut words = vec![0; n_words];
                words[0] = *w;
                self.repr = Repr::Spilled(words);
            }
            Repr::Spilled(words) => words.resize(n_words, 0),
        }
    }

    /// Lexicographic comparison by sorted member lists (used by the deterministic
    /// tie-breaking rules fixed in Section 2 of the paper), computed word-wise: the
    /// smallest element of the symmetric difference decides, except that a set that is
    /// a strict prefix of the other (as a sorted sequence) compares smaller.
    pub fn lex_cmp(&self, other: &VertexSet) -> Ordering {
        let (a, b) = (self.as_words(), other.as_words());
        let n = a.len().max(b.len());
        for i in 0..n {
            let (x, y) = (self.word(i), other.word(i));
            let diff = x ^ y;
            if diff == 0 {
                continue;
            }
            // Lowest differing bit: the smallest element present in exactly one set.
            let bit = diff & diff.wrapping_neg();
            let above = !(bit | (bit - 1));
            return if x & bit != 0 {
                // The element is ours.  We are smaller iff the other set still has a
                // later element to compare it against; otherwise the other set is a
                // strict prefix of ours and compares smaller.
                if y & above != 0 || b.iter().skip(i + 1).any(|&w| w != 0) {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            } else if x & above != 0 || a.iter().skip(i + 1).any(|&w| w != 0) {
                Ordering::Greater
            } else {
                Ordering::Less
            };
        }
        Ordering::Equal
    }

    /// Encoded length in bits when the set is written down as a bitmap over its
    /// universe.  Used by the experiment harness when reporting input sizes.
    pub fn encoding_bits(&self) -> usize {
        self.capacity
    }
}

impl PartialEq for VertexSet {
    fn eq(&self, other: &Self) -> bool {
        let max_words = self.as_words().len().max(other.as_words().len());
        (0..max_words).all(|i| self.word(i) == other.word(i))
    }
}

impl core::hash::Hash for VertexSet {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        // Hash only up to the last non-zero word so that equal sets over different
        // universes (and representations) hash identically, consistent with PartialEq.
        let words = self.as_words();
        let mut last = words.len();
        while last > 0 && words[last - 1] == 0 {
            last -= 1;
        }
        words[..last].hash(state);
    }
}

impl PartialOrd for VertexSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VertexSet {
    fn cmp(&self, other: &Self) -> Ordering {
        self.lex_cmp(other)
    }
}

impl fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", v.0)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Vertex> for VertexSet {
    /// Collects vertices into a set whose capacity is just large enough.
    fn from_iter<T: IntoIterator<Item = Vertex>>(iter: T) -> Self {
        let items: Vec<Vertex> = iter.into_iter().collect();
        let cap = items.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut s = VertexSet::empty(cap);
        for v in items {
            s.insert(v);
        }
        s
    }
}

/// Convenience macro for building a [`VertexSet`] in tests and examples:
/// `vset![capacity; 0, 2, 5]`.
#[macro_export]
macro_rules! vset {
    ($cap:expr $(;)?) => {
        $crate::VertexSet::empty($cap)
    };
    ($cap:expr; $($v:expr),* $(,)?) => {{
        let mut s = $crate::VertexSet::empty($cap);
        $( s.insert($crate::Vertex::from($v as usize)); )*
        s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = VertexSet::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = VertexSet::full(10);
        assert_eq!(f.len(), 10);
        assert!(f.contains(Vertex::new(0)));
        assert!(f.contains(Vertex::new(9)));
        assert!(!f.contains(Vertex::new(10)));
    }

    #[test]
    fn all_subsets_enumerates_the_lattice_once() {
        let subsets: alloc::vec::Vec<VertexSet> = VertexSet::all_subsets(4).collect();
        assert_eq!(subsets.len(), 16);
        assert!(subsets[0].is_empty());
        assert_eq!(subsets[15], VertexSet::full(4));
        for (mask, s) in subsets.iter().enumerate() {
            assert_eq!(s.as_bits(), Some(mask as u64));
        }
        // The degenerate universe still yields its one (empty) subset.
        assert_eq!(VertexSet::all_subsets(0).count(), 1);
    }

    #[test]
    fn full_at_word_boundaries() {
        for cap in [0, 1, 63, 64, 65, 127, 128, 129] {
            let f = VertexSet::full(cap);
            assert_eq!(f.len(), cap, "full({cap})");
            assert_eq!(f.complement(cap).len(), 0, "complement of full({cap})");
            assert_eq!(VertexSet::empty(cap).complement(cap).len(), cap);
        }
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = VertexSet::empty(70);
        assert!(s.insert(Vertex::new(3)));
        assert!(!s.insert(Vertex::new(3)));
        assert!(s.insert(Vertex::new(65)));
        assert!(s.contains(Vertex::new(3)));
        assert!(s.contains(Vertex::new(65)));
        assert!(!s.contains(Vertex::new(64)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(Vertex::new(3)));
        assert!(!s.remove(Vertex::new(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn inline_and_spilled_representations() {
        let small = VertexSet::from_indices(64, [0, 63]);
        assert_eq!(small.as_bits(), Some(1 | (1 << 63)));
        assert_eq!(small.as_words(), &[1 | (1 << 63)]);
        let big = VertexSet::from_indices(65, [0, 64]);
        assert_eq!(big.as_bits(), None);
        assert_eq!(big.as_words(), &[1, 1]);
        // Same members, different representations: still equal and same hash.
        let a = VertexSet::from_indices(10, [1, 2]);
        let b = VertexSet::from_indices(100, [1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_bits_matches_per_bit_construction() {
        for mask in [0u64, 1, 0b1010, 0xFFFF_FFFF_FFFF_FFFF] {
            let n = 64;
            let direct = VertexSet::from_bits(n, mask);
            let looped = VertexSet::from_indices(n, (0..n).filter(|i| mask & (1 << i) != 0));
            assert_eq!(direct, looped);
        }
        // Bits beyond the capacity are ignored.
        assert_eq!(VertexSet::from_bits(3, 0b11111).to_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn grow_spills_across_the_inline_boundary() {
        let mut s = VertexSet::from_indices(64, [0, 63]);
        assert!(s.as_bits().is_some());
        s.grow(65);
        assert!(s.as_bits().is_none());
        assert!(s.contains(Vertex::new(0)));
        assert!(s.contains(Vertex::new(63)));
        s.insert(Vertex::new(64));
        assert_eq!(s.to_indices(), vec![0, 63, 64]);
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = VertexSet::from_indices(130, [5, 0, 127, 64, 63]);
        assert_eq!(s.to_indices(), vec![0, 5, 63, 64, 127]);
        assert_eq!(s.min_vertex(), Some(Vertex::new(0)));
        assert_eq!(s.max_vertex(), Some(Vertex::new(127)));
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_indices(10, [0, 1, 2, 3]);
        let b = VertexSet::from_indices(10, [2, 3, 4, 5]);
        assert_eq!(a.union(&b).to_indices(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).to_indices(), vec![2, 3]);
        assert_eq!(a.difference(&b).to_indices(), vec![0, 1]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_len(&b), 2);
        let c = VertexSet::from_indices(10, [7, 8]);
        assert!(!a.intersects(&c));
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn binary_ops_take_the_larger_capacity() {
        // Regression test for the historical inconsistency where `difference` kept
        // `self.capacity` while `union`/`intersection` took the max.
        let small = VertexSet::from_indices(5, [0, 1]);
        let large = VertexSet::from_indices(100, [1, 70]);
        assert_eq!(small.union(&large).capacity(), 100);
        assert_eq!(small.intersection(&large).capacity(), 100);
        assert_eq!(small.difference(&large).capacity(), 100);
        assert_eq!(large.difference(&small).capacity(), 100);
        // And the members are right across the representation boundary.
        assert_eq!(small.union(&large).to_indices(), vec![0, 1, 70]);
        assert_eq!(small.intersection(&large).to_indices(), vec![1]);
        assert_eq!(small.difference(&large).to_indices(), vec![0]);
        assert_eq!(large.difference(&small).to_indices(), vec![70]);
    }

    #[test]
    fn in_place_ops_across_universes() {
        let mut a = VertexSet::from_indices(5, [0, 1]);
        let large = VertexSet::from_indices(100, [1, 70]);
        a.union_with(&large);
        assert_eq!(a.capacity(), 100, "union_with grows to the larger universe");
        assert_eq!(a.to_indices(), vec![0, 1, 70]);
        let mut b = VertexSet::from_indices(100, [1, 70]);
        b.intersect_with(&VertexSet::from_indices(5, [1, 2]));
        assert_eq!(b.to_indices(), vec![1], "tail words are cleared");
        let mut c = VertexSet::from_indices(100, [1, 70]);
        c.subtract(&VertexSet::from_indices(5, [1]));
        assert_eq!(c.to_indices(), vec![70]);
    }

    #[test]
    fn subset_relations() {
        let a = VertexSet::from_indices(10, [1, 2]);
        let b = VertexSet::from_indices(10, [1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
        // across representations
        let big = VertexSet::from_indices(80, [1, 2, 70]);
        assert!(a.is_subset(&big));
        assert!(!big.is_subset(&a));
    }

    #[test]
    fn complement_with_respect_to_universe() {
        let a = VertexSet::from_indices(5, [0, 2]);
        assert_eq!(a.complement(5).to_indices(), vec![1, 3, 4]);
        assert_eq!(
            VertexSet::empty(3).complement(3).to_indices(),
            vec![0, 1, 2]
        );
        // complement w.r.t. a larger universe than the set's own
        assert_eq!(a.complement(7).to_indices(), vec![1, 3, 4, 5, 6]);
        // members beyond the universe are ignored
        let wide = VertexSet::from_indices(100, [0, 80]);
        assert_eq!(wide.complement(3).to_indices(), vec![1, 2]);
    }

    #[test]
    fn equality_ignores_capacity() {
        let a = VertexSet::from_indices(5, [1, 2]);
        let b = VertexSet::from_indices(100, [1, 2]);
        assert_eq!(a, b);
        use core::hash::{Hash, Hasher};
        use std::collections::hash_map::DefaultHasher;
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn lexicographic_order() {
        let a = VertexSet::from_indices(10, [0, 5]);
        let b = VertexSet::from_indices(10, [0, 6]);
        let c = VertexSet::from_indices(10, [0]);
        assert_eq!(a.lex_cmp(&b), Ordering::Less);
        assert_eq!(b.lex_cmp(&a), Ordering::Greater);
        assert_eq!(c.lex_cmp(&a), Ordering::Less); // prefix is smaller
        assert_eq!(a.lex_cmp(&a), Ordering::Equal);
        assert!(a < b);
    }

    #[test]
    fn lexicographic_order_matches_sorted_lists_across_words() {
        // Word-wise lex_cmp must agree with comparing the sorted index vectors.
        let sets = [
            VertexSet::empty(130),
            VertexSet::from_indices(130, [0]),
            VertexSet::from_indices(130, [0, 64]),
            VertexSet::from_indices(130, [0, 65]),
            VertexSet::from_indices(130, [64]),
            VertexSet::from_indices(130, [64, 129]),
            VertexSet::from_indices(130, [65]),
            VertexSet::from_indices(130, [0, 1, 2]),
            VertexSet::from_indices(130, [0, 1]),
            VertexSet::from_indices(130, [129]),
        ];
        for x in &sets {
            for y in &sets {
                assert_eq!(
                    x.lex_cmp(y),
                    x.to_indices().cmp(&y.to_indices()),
                    "lex_cmp({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn with_and_without() {
        let a = VertexSet::from_indices(10, [1, 2]);
        assert_eq!(a.with(Vertex::new(5)).to_indices(), vec![1, 2, 5]);
        assert_eq!(a.without(Vertex::new(1)).to_indices(), vec![2]);
        // original untouched
        assert_eq!(a.to_indices(), vec![1, 2]);
        // `with` past the capacity grows (and may spill)
        assert_eq!(a.with(Vertex::new(99)).to_indices(), vec![1, 2, 99]);
    }

    #[test]
    fn grow_preserves_members() {
        let mut a = VertexSet::from_indices(4, [0, 3]);
        a.grow(200);
        assert!(a.contains(Vertex::new(3)));
        a.insert(Vertex::new(190));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn from_iterator_and_macro() {
        let s: VertexSet = [Vertex::new(2), Vertex::new(4)].into_iter().collect();
        assert_eq!(s.to_indices(), vec![2, 4]);
        let m = vset![8; 1, 3, 5];
        assert_eq!(m.to_indices(), vec![1, 3, 5]);
        let e = vset![8];
        assert!(e.is_empty());
    }

    #[test]
    fn in_place_operations() {
        let mut a = VertexSet::from_indices(10, [0, 1, 2]);
        let b = VertexSet::from_indices(10, [1, 2, 3]);
        a.union_with(&b);
        assert_eq!(a.to_indices(), vec![0, 1, 2, 3]);
        a.intersect_with(&b);
        assert_eq!(a.to_indices(), vec![1, 2, 3]);
        a.subtract(&VertexSet::from_indices(10, [3]));
        assert_eq!(a.to_indices(), vec![1, 2]);
    }

    #[test]
    fn display_format() {
        let s = VertexSet::from_indices(10, [1, 4]);
        assert_eq!(format!("{s}"), "{1,4}");
        assert_eq!(format!("{:?}", VertexSet::empty(3)), "{}");
    }
}
