//! Property-based tests for the hypergraph substrate.

use proptest::prelude::*;
use qld_hypergraph::transversal::{are_dual_exact, minimal_transversals, IncrementalTransversals};
use qld_hypergraph::{Hypergraph, Vertex, VertexSet};

/// Strategy: a random vertex set over a universe of `n` vertices.
fn arb_vset(n: usize) -> impl Strategy<Value = VertexSet> {
    prop::collection::vec(0..n, 0..=n).prop_map(move |idx| VertexSet::from_indices(n, idx))
}

/// Strategy: a random (not necessarily simple) hypergraph with up to `m` edges over `n`
/// vertices, with non-empty edges.
fn arb_hypergraph(n: usize, m: usize) -> impl Strategy<Value = Hypergraph> {
    prop::collection::vec(prop::collection::vec(0..n, 1..=n.max(1)), 1..=m).prop_map(move |edges| {
        Hypergraph::from_edges(n, edges.into_iter().map(|e| VertexSet::from_indices(n, e)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn set_union_intersection_laws(a in arb_vset(12), b in arb_vset(12)) {
        // commutativity
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        // absorption: a ∪ (a ∩ b) = a
        prop_assert_eq!(a.union(&a.intersection(&b)), a.clone());
        // inclusion–exclusion on cardinalities
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
        // difference and intersection partition a
        prop_assert_eq!(a.difference(&b).len() + a.intersection(&b).len(), a.len());
    }

    #[test]
    fn complement_involution(a in arb_vset(12)) {
        let n = 12;
        prop_assert_eq!(a.complement(n).complement(n), a.clone());
        prop_assert_eq!(a.complement(n).len(), n - a.len());
        prop_assert!(a.complement(n).is_disjoint(&a));
    }

    #[test]
    fn subset_is_partial_order(a in arb_vset(10), b in arb_vset(10), c in arb_vset(10)) {
        prop_assert!(a.is_subset(&a));
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
        if a.is_subset(&b) && b.is_subset(&c) {
            prop_assert!(a.is_subset(&c));
        }
    }

    #[test]
    fn minimize_yields_simple_hypergraph_with_same_transversals(h in arb_hypergraph(7, 6)) {
        let m = h.minimize();
        prop_assert!(m.is_simple());
        // Absorption does not change which sets are transversals.
        let t = VertexSet::full(7);
        prop_assert_eq!(h.is_transversal(&t), m.is_transversal(&t));
        for mask in 0u32..(1 << 7) {
            let s = VertexSet::from_indices(7, (0..7).filter(|i| mask & (1 << i) != 0));
            prop_assert_eq!(h.is_transversal(&s), m.is_transversal(&s));
        }
    }

    #[test]
    fn transversal_family_is_correct_and_minimal(h in arb_hypergraph(7, 5)) {
        let tr = minimal_transversals(&h);
        prop_assert!(tr.is_simple());
        for t in tr.edges() {
            prop_assert!(h.is_minimal_transversal(t));
        }
        // every brute-force transversal contains a member of tr(h)
        for mask in 0u32..(1 << 7) {
            let s = VertexSet::from_indices(7, (0..7).filter(|i| mask & (1 << i) != 0));
            if h.is_transversal(&s) {
                prop_assert!(tr.edges().iter().any(|t| t.is_subset(&s)));
            }
        }
    }

    #[test]
    fn double_dualization_identity(h in arb_hypergraph(7, 5)) {
        let m = h.minimize();
        let tr = minimal_transversals(&m);
        let back = minimal_transversals(&tr);
        prop_assert!(back.same_edge_set(&m));
        // duality is symmetric
        prop_assert!(are_dual_exact(&tr, &m));
        prop_assert!(are_dual_exact(&m, &tr));
    }

    #[test]
    fn incremental_dualization_matches_batch(h in arb_hypergraph(7, 6)) {
        let mut inc = IncrementalTransversals::new(h.num_vertices());
        for e in h.edges() {
            inc.add_edge(e.clone());
        }
        let batch = minimal_transversals(&h);
        prop_assert!(inc.transversals().same_edge_set(&batch));
    }

    #[test]
    fn restrictions_are_consistent(h in arb_hypergraph(8, 6), s in arb_vset(8)) {
        let gs = h.restrict_intersections(&s);
        for e in gs.edges() {
            prop_assert!(e.is_subset(&s));
        }
        prop_assert!(gs.num_edges() <= h.num_edges());
        let hs = h.restrict_subedges(&s);
        for e in hs.edges() {
            prop_assert!(e.is_subset(&s));
            prop_assert!(h.contains_edge(e));
        }
    }

    #[test]
    fn minimize_transversal_produces_minimal(h in arb_hypergraph(8, 6)) {
        let full = VertexSet::full(8);
        if h.is_transversal(&full) {
            let m = h.minimize_transversal(&full);
            prop_assert!(h.is_minimal_transversal(&m));
        }
    }

    #[test]
    fn frequent_vertices_threshold(h in arb_hypergraph(8, 6)) {
        let freq = h.vertex_frequencies();
        let thr = h.num_edges() / 2;
        let fv = h.frequent_vertices(thr);
        for (i, &count) in freq.iter().enumerate() {
            prop_assert_eq!(fv.contains(Vertex::from(i)), count > thr);
        }
    }

    /// The batched arena-pass probes answer bit-for-bit like the per-probe
    /// kernels, across random families and universe widths straddling the
    /// 64→65 (1→2 word) and 128→129 (2→3 word) boundaries where the stride
    /// specializations hand over to the wide-word kernels.
    #[test]
    fn batched_probes_agree_with_per_probe_kernels(
        n_pick in 0usize..8,
        raw_edges in prop::collection::vec(prop::collection::vec(0usize..64, 1..6usize), 1..8usize),
        raw_probes in prop::collection::vec(prop::collection::vec(0usize..64, 0..8usize), 1..6usize),
    ) {
        let n = [6usize, 63, 64, 65, 127, 128, 129, 200][n_pick];
        // Scale the raw indices into the sampled universe so every width gets
        // bits in its top word.
        let scale = |idx: &[usize]| -> Vec<usize> {
            idx.iter().map(|&i| i * n.max(1) / 64).collect()
        };
        let h = Hypergraph::from_edges(
            n,
            raw_edges.iter().map(|e| VertexSet::from_indices(n, scale(e))),
        );
        let probes: Vec<VertexSet> = raw_probes
            .iter()
            .map(|p| VertexSet::from_indices(n, scale(p)))
            .collect();
        let refs: Vec<&VertexSet> = probes.iter().collect();
        let idx = h.index();
        let many = idx.transversal_many(&refs);
        let classes = idx.classify_many(&refs);
        for (i, p) in probes.iter().enumerate() {
            prop_assert_eq!(many[i], idx.is_transversal(p));
            prop_assert_eq!(classes[i].transversal, idx.is_transversal(p));
            prop_assert_eq!(classes[i].covers_edge, idx.evaluate_dnf(p));
            // ... and the per-probe kernels in turn match the edge-list scans.
            prop_assert_eq!(idx.is_transversal(p), h.edges().iter().all(|e| e.intersects(p)));
            prop_assert_eq!(idx.evaluate_dnf(p), h.edges().iter().any(|e| e.is_subset(p)));
        }
        // Single-probe arena scans against the same reference.
        for p in &probes {
            let inside: Vec<usize> = h
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| e.is_subset(p))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(idx.edges_inside(p), inside.clone());
            prop_assert_eq!(idx.count_edges_inside(p), inside.len());
            prop_assert_eq!(
                idx.first_edge_disjoint(p),
                h.edges().iter().position(|e| !e.intersects(p))
            );
        }
    }
}
