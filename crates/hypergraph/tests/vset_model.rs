//! Model-based property suite for the small-set-optimized [`VertexSet`].
//!
//! Every operation — construction, mutation, growth across the 64→65 inline/spill
//! boundary, the binary algebra, the predicates, complement, and the lexicographic
//! order — is checked against a `BTreeSet<usize>` reference model.  Random op
//! sequences drive a pair of sets through mixed universes (1..=130 vertices) so
//! inline×inline, inline×spilled, and spilled×spilled combinations are all hit, and a
//! dedicated case walks the exact 64→65 capacity boundary.

use proptest::prelude::*;
use qld_hypergraph::{Vertex, VertexSet, INLINE_BITS};
use std::collections::BTreeSet;

/// A set under test paired with its reference model.
struct Checked {
    real: VertexSet,
    model: BTreeSet<usize>,
    capacity: usize,
}

impl Checked {
    fn new(capacity: usize) -> Self {
        Checked {
            real: VertexSet::empty(capacity),
            model: BTreeSet::new(),
            capacity,
        }
    }

    fn insert(&mut self, v: usize) {
        let v = v % self.capacity.max(1);
        assert_eq!(self.real.insert(Vertex::from(v)), self.model.insert(v));
    }

    fn remove(&mut self, v: usize) {
        // Removal of out-of-universe vertices is a no-op on both sides.
        assert_eq!(self.real.remove(Vertex::from(v)), self.model.remove(&v));
    }

    fn grow(&mut self, capacity: usize) {
        self.real.grow(capacity);
        self.capacity = self.capacity.max(capacity);
    }

    /// Full invariant battery against the model.
    fn check(&self) {
        assert_eq!(self.real.len(), self.model.len());
        assert_eq!(self.real.is_empty(), self.model.is_empty());
        assert_eq!(
            self.real.to_indices(),
            self.model.iter().copied().collect::<Vec<_>>(),
            "iteration order"
        );
        assert_eq!(
            self.real.min_vertex().map(|v| v.index()),
            self.model.first().copied()
        );
        assert_eq!(
            self.real.max_vertex().map(|v| v.index()),
            self.model.last().copied()
        );
        // Membership, probed across the universe and one step past it.
        for v in 0..=self.capacity {
            assert_eq!(
                self.real.contains(Vertex::from(v)),
                self.model.contains(&v),
                "contains({v}) at capacity {}",
                self.capacity
            );
        }
        // Representation: inline exactly when the universe fits one word.
        assert_eq!(self.real.as_bits().is_some(), self.capacity <= INLINE_BITS);
        if let Some(bits) = self.real.as_bits() {
            let rebuilt = VertexSet::from_bits(self.capacity, bits);
            assert_eq!(rebuilt, self.real, "from_bits round trip");
        }
        // Complement partitions the universe.
        let co = self.real.complement(self.capacity);
        let co_model: BTreeSet<usize> = (0..self.capacity)
            .filter(|v| !self.model.contains(v))
            .collect();
        assert_eq!(
            co.to_indices(),
            co_model.iter().copied().collect::<Vec<_>>()
        );
    }
}

/// Binary-operation battery for a pair of checked sets.
fn check_pair(a: &Checked, b: &Checked) {
    let (ra, rb) = (&a.real, &b.real);
    let (ma, mb) = (&a.model, &b.model);
    let expect = |s: &BTreeSet<usize>| s.iter().copied().collect::<Vec<_>>();

    let union: BTreeSet<usize> = ma.union(mb).copied().collect();
    let inter: BTreeSet<usize> = ma.intersection(mb).copied().collect();
    let diff: BTreeSet<usize> = ma.difference(mb).copied().collect();
    assert_eq!(ra.union(rb).to_indices(), expect(&union));
    assert_eq!(ra.intersection(rb).to_indices(), expect(&inter));
    assert_eq!(ra.difference(rb).to_indices(), expect(&diff));
    // Documented capacity rule: binary results cover the larger universe.
    let max_cap = a.capacity.max(b.capacity);
    assert_eq!(ra.union(rb).capacity(), max_cap);
    assert_eq!(ra.intersection(rb).capacity(), max_cap);
    assert_eq!(ra.difference(rb).capacity(), max_cap);

    assert_eq!(ra.intersects(rb), !inter.is_empty());
    assert_eq!(ra.is_disjoint(rb), inter.is_empty());
    assert_eq!(ra.is_subset(rb), ma.is_subset(mb));
    assert_eq!(ra.is_superset(rb), ma.is_superset(mb));
    assert_eq!(ra.is_proper_subset(rb), ma.is_subset(mb) && ma != mb);
    assert_eq!(ra.intersection_len(rb), inter.len());
    assert_eq!(ra == rb, ma == mb, "equality ignores capacity");
    assert_eq!(
        ra.lex_cmp(rb),
        expect(ma).cmp(&expect(mb)),
        "lex_cmp vs sorted member lists: {ra} vs {rb}"
    );

    // In-place variants agree with their out-of-place counterparts.
    let mut t = ra.clone();
    t.union_with(rb);
    assert_eq!(t.to_indices(), expect(&union), "union_with");
    let mut t = ra.clone();
    t.intersect_with(rb);
    assert_eq!(t.to_indices(), expect(&inter), "intersect_with");
    let mut t = ra.clone();
    t.subtract(rb);
    assert_eq!(t.to_indices(), expect(&diff), "subtract");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random op sequences over a pair of sets with independent universes.
    #[test]
    fn vertexset_agrees_with_btreeset_model(
        cap_a in 1usize..=130,
        cap_b in 1usize..=130,
        ops in prop::collection::vec(0u64..u64::MAX, 0usize..=80),
    ) {
        let mut a = Checked::new(cap_a);
        let mut b = Checked::new(cap_b);
        for op in ops {
            let target_b = op % 2 == 1;
            let kind = (op / 2) % 4;
            let arg = (op / 8) as usize % 140;
            let t = if target_b { &mut b } else { &mut a };
            match kind {
                0 => t.insert(arg),
                1 => t.remove(arg),
                2 => t.grow(arg.max(1)),
                _ => {
                    // `with`/`without` round trip: fresh copies, original untouched.
                    let v = Vertex::from(arg);
                    let with = t.real.with(v);
                    assert!(with.contains(v));
                    let without = t.real.without(v);
                    assert!(!without.contains(v));
                }
            }
            t.check();
        }
        check_pair(&a, &b);
        check_pair(&b, &a);
    }

    /// The 64→65 boundary: grow an inline set one vertex past the word, then keep
    /// mutating; the spill must preserve members and every predicate.
    #[test]
    fn inline_to_spill_boundary(
        members in prop::collection::vec(0usize..64, 0usize..=24),
        extra in prop::collection::vec(0usize..130, 0usize..=24),
    ) {
        let mut s = Checked::new(INLINE_BITS);
        for v in members {
            s.insert(v);
        }
        s.check();
        assert!(s.real.as_bits().is_some(), "still inline at capacity 64");
        let before = s.real.to_indices();

        s.grow(INLINE_BITS + 1);
        s.check();
        assert!(s.real.as_bits().is_none(), "spilled at capacity 65");
        assert_eq!(s.real.to_indices(), before, "spill preserves members");
        s.insert(INLINE_BITS); // vertex 64 is now in range
        s.check();

        let mut grown = Checked::new(130);
        for v in extra {
            grown.insert(v);
        }
        grown.check();
        check_pair(&s, &grown);
        check_pair(&grown, &s);
    }
}
