//! The additional-key-for-instance problem (Proposition 1.2).
//!
//! Given a relational instance `R` and a set `K` of minimal keys of `R`, decide whether
//! `R` has a minimal key not already in `K`.  Since the minimal keys of `R` are exactly
//! the minimal transversals of the disagreement hypergraph `D(R)` (which is
//! logspace-computable from `R`), the question "is `K` complete?" is precisely the
//! `DUAL` instance `(D(R), K)`, and a duality witness converts into a concrete new
//! minimal key.

use crate::instance::RelationInstance;
use crate::keys::disagreement_hypergraph;
use qld_core::{DualError, DualityResult, DualitySolver, NonDualWitness, QuadLogspaceSolver};
use qld_hypergraph::{Hypergraph, VertexSet};

/// The outcome of the additional-key check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdditionalKey {
    /// `K` already contains every minimal key of `R`.
    Complete,
    /// `R` has a further minimal key, reported here.
    Found(VertexSet),
    /// One of the provided sets is not a minimal key of `R`.
    Invalid(VertexSet),
}

/// Decides the additional-key problem with the given duality solver.
pub fn additional_key_with(
    r: &RelationInstance,
    known_keys: &Hypergraph,
    solver: &dyn DualitySolver,
) -> Result<AdditionalKey, DualError> {
    // Validate the input: every provided set must be a minimal key.
    for k in known_keys.edges() {
        if !r.is_minimal_key(k) {
            return Ok(AdditionalKey::Invalid(k.clone()));
        }
    }
    let d = disagreement_hypergraph(r);
    let n = r.num_attributes();
    let known = if known_keys.num_vertices() < n {
        Hypergraph::from_edges(n, known_keys.edges().iter().cloned())
    } else {
        known_keys.clone()
    };

    // Degenerate cases of the disagreement hypergraph:
    // no distinct row pairs (≤ 1 row) → D = ∅, the only minimal key is ∅;
    // two identical rows → ∅ ∈ D, no key exists.
    if d.is_empty() {
        return Ok(if known.num_edges() == 1 && known.edge(0).is_empty() {
            AdditionalKey::Complete
        } else {
            AdditionalKey::Found(VertexSet::empty(n))
        });
    }
    if d.has_empty_edge() {
        // No keys at all: K must be empty to be complete (validation already rejected
        // any non-key, so `known` is empty here).
        return Ok(AdditionalKey::Complete);
    }

    match solver.decide(&d, &known)? {
        DualityResult::Dual => Ok(AdditionalKey::Complete),
        DualityResult::NotDual(witness) => {
            let new_key = key_from_witness(r, &d, &known, &witness);
            Ok(AdditionalKey::Found(new_key))
        }
    }
}

/// Decides the additional-key problem with the paper's quadratic-logspace solver.
pub fn additional_key(
    r: &RelationInstance,
    known_keys: &Hypergraph,
) -> Result<AdditionalKey, DualError> {
    additional_key_with(r, known_keys, &QuadLogspaceSolver::default())
}

/// Enumerates **all** minimal keys incrementally, one duality call per key (plus the
/// final confirmation) — the enumeration procedure mentioned in Proposition 1.2.
pub fn enumerate_minimal_keys_with(
    r: &RelationInstance,
    solver: &dyn DualitySolver,
) -> Result<(Hypergraph, usize), DualError> {
    let n = r.num_attributes();
    let mut known = Hypergraph::new(n);
    let mut calls = 0;
    loop {
        calls += 1;
        match additional_key_with(r, &known, solver)? {
            AdditionalKey::Complete => return Ok((known, calls)),
            AdditionalKey::Found(k) => {
                debug_assert!(!known.contains_edge(&k));
                known.add_edge(k);
            }
            AdditionalKey::Invalid(k) => unreachable!("internally produced invalid key {k}"),
        }
    }
}

/// Converts a duality witness for `(D(R), K)` into a new minimal key.
fn key_from_witness(
    r: &RelationInstance,
    d: &Hypergraph,
    known: &Hypergraph,
    witness: &NonDualWitness,
) -> VertexSet {
    let n = r.num_attributes();
    let candidate = match witness {
        // A transversal of D containing no known key: shrink it to a minimal
        // transversal of D — a minimal key, and new because it contains no known key.
        NonDualWitness::NewTransversalOfG(t) => {
            let mut t = t.clone();
            t.grow(n);
            t
        }
        // A transversal of K containing no D-edge.  Its complement W is then a
        // transversal of D (every D-edge meets W), i.e. a key, and W contains no known
        // key (each known key meets t, hence sticks out of W); shrinking W yields a new
        // minimal key.
        NonDualWitness::NewTransversalOfH(t) => {
            let mut t = t.clone();
            t.grow(n);
            t.complement(n)
        }
        // A D-edge disjoint from a known key would contradict that key being a
        // transversal of D — impossible once the inputs are validated.
        NonDualWitness::DisjointEdges { .. } => {
            debug_assert!(false, "disjoint-edge witness with validated keys");
            VertexSet::full(n)
        }
    };
    debug_assert!(d.is_transversal(&candidate));
    let minimal = d.minimize_transversal(&candidate);
    debug_assert!(r.is_minimal_key(&minimal));
    debug_assert!(!known.contains_edge(&minimal));
    minimal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::sample_instance;
    use crate::keys::{minimal_keys_brute, minimal_keys_exact};
    use qld_hypergraph::vset;

    #[test]
    fn complete_key_sets_are_recognized() {
        let r = sample_instance();
        let all = minimal_keys_exact(&r);
        assert_eq!(additional_key(&r, &all).unwrap(), AdditionalKey::Complete);
    }

    #[test]
    fn missing_keys_are_found() {
        let r = sample_instance();
        let all = minimal_keys_exact(&r);
        // start from each single known key: the other one must be found
        for drop in 0..all.num_edges() {
            let mut partial = all.clone();
            let removed = partial.remove_edge(drop);
            match additional_key(&r, &partial).unwrap() {
                AdditionalKey::Found(k) => {
                    assert!(r.is_minimal_key(&k));
                    assert!(!partial.contains_edge(&k));
                    assert_eq!(k, removed); // only one key was missing
                }
                other => panic!("expected Found, got {other:?}"),
            }
        }
        // and from the empty set a first key is found
        match additional_key(&r, &Hypergraph::new(4)).unwrap() {
            AdditionalKey::Found(k) => assert!(r.is_minimal_key(&k)),
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn invalid_inputs_are_flagged() {
        let r = sample_instance();
        // {A,B,C} is a key but not minimal; {D} is not a key.
        for bad in [vset![4; 0, 1, 2], vset![4; 3]] {
            let k = Hypergraph::from_edges(4, [bad.clone()]);
            assert_eq!(additional_key(&r, &k).unwrap(), AdditionalKey::Invalid(bad));
        }
    }

    #[test]
    fn enumeration_matches_ground_truth() {
        for seed in 0..5 {
            let r = crate::generators::random_instance(5, 7, 3, seed);
            let (keys, calls) =
                enumerate_minimal_keys_with(&r, &QuadLogspaceSolver::default()).unwrap();
            let brute = minimal_keys_brute(&r);
            assert!(keys.same_edge_set(&brute), "seed {seed}");
            assert_eq!(calls, keys.num_edges() + 1);
        }
    }

    #[test]
    fn degenerate_instances() {
        // single row: ∅ is the unique minimal key
        let one = RelationInstance::from_rows(3, vec![vec![5, 5, 5]]);
        match additional_key(&one, &Hypergraph::new(3)).unwrap() {
            AdditionalKey::Found(k) => assert!(k.is_empty()),
            other => panic!("{other:?}"),
        }
        let complete = Hypergraph::from_edges(3, [VertexSet::empty(3)]);
        assert_eq!(
            additional_key(&one, &complete).unwrap(),
            AdditionalKey::Complete
        );
        // duplicate rows: there is no key, the empty key-set is already complete
        let dup = RelationInstance::from_rows(2, vec![vec![1, 2], vec![1, 2]]);
        assert_eq!(
            additional_key(&dup, &Hypergraph::new(2)).unwrap(),
            AdditionalKey::Complete
        );
        let (keys, _) = enumerate_minimal_keys_with(&dup, &QuadLogspaceSolver::default()).unwrap();
        assert_eq!(keys.num_edges(), 0);
    }
}
