//! Synthetic relational instances for tests, examples, and experiments.

use crate::instance::RelationInstance;
use alloc::vec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random instance: `rows` rows over `attributes` attributes, each cell drawn
/// uniformly from a domain of `domain_size` symbols.
///
/// Small domains produce many agreeing pairs (rich agree-set structure, larger keys);
/// large domains make single attributes keys.
pub fn random_instance(
    attributes: usize,
    rows: usize,
    domain_size: u32,
    seed: u64,
) -> RelationInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = RelationInstance::new(attributes);
    for _ in 0..rows {
        let row = (0..attributes)
            .map(|_| rng.gen_range(0..domain_size.max(1)))
            .collect();
        r.add_row(row);
    }
    r
}

/// An instance with a *planted key*: the attributes in `key` jointly enumerate the row
/// index (so they form a key), while all other attributes are drawn from a tiny domain
/// to create many agreements.
pub fn planted_key_instance(
    attributes: usize,
    rows: usize,
    key: &[usize],
    seed: u64,
) -> RelationInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = RelationInstance::new(attributes);
    for row_idx in 0..rows {
        let mut row = vec![0u32; attributes];
        for (a, cell) in row.iter_mut().enumerate() {
            if key.contains(&a) {
                // spread the row index across the key attributes positionally
                let pos = key.iter().position(|&k| k == a).unwrap();
                *cell = ((row_idx >> (4 * pos)) & 0xF) as u32;
            } else {
                *cell = rng.gen_range(0..2);
            }
        }
        r.add_row(row);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::VertexSet;

    #[test]
    fn random_instances_are_deterministic() {
        let a = random_instance(4, 10, 3, 1);
        let b = random_instance(4, 10, 3, 1);
        assert_eq!(a, b);
        assert_eq!(a.num_rows(), 10);
        assert_eq!(a.num_attributes(), 4);
        let c = random_instance(4, 10, 3, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn planted_key_is_a_key() {
        let key = [1, 3];
        let r = planted_key_instance(5, 12, &key, 7);
        let key_set = VertexSet::from_indices(5, key.iter().copied());
        assert!(r.is_key(&key_set));
    }
}
