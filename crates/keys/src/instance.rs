//! Relational instances (explicitly given tables) for key discovery.
//!
//! The *additional key for instance* problem of Section 1 (Proposition 1.2) is posed
//! over explicitly given relational instances: tables whose rows carry arbitrary
//! symbolic values.  A set of attributes `K` is a **key** if no two distinct rows agree
//! on all attributes of `K`; the interesting objects are the *minimal* keys.

use alloc::string::String;
use alloc::string::ToString;
use alloc::vec::Vec;
use core::fmt;
use qld_hypergraph::{Vertex, VertexSet};

/// An explicitly given relational instance: rows of symbolic (integer-coded) values
/// over a fixed list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationInstance {
    num_attributes: usize,
    rows: Vec<Vec<u32>>,
}

impl RelationInstance {
    /// Creates an empty instance over `num_attributes` attributes.
    pub fn new(num_attributes: usize) -> Self {
        RelationInstance {
            num_attributes,
            rows: Vec::new(),
        }
    }

    /// Creates an instance from explicit rows.  All rows must have exactly
    /// `num_attributes` values.
    pub fn from_rows(num_attributes: usize, rows: Vec<Vec<u32>>) -> Self {
        let mut r = RelationInstance::new(num_attributes);
        for row in rows {
            r.add_row(row);
        }
        r
    }

    /// Adds a row (must have exactly `num_attributes` values).
    pub fn add_row(&mut self, row: Vec<u32>) {
        assert_eq!(
            row.len(),
            self.num_attributes,
            "row arity does not match the schema"
        );
        self.rows.push(row);
    }

    /// Number of attributes in the schema.
    pub fn num_attributes(&self) -> usize {
        self.num_attributes
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<u32>] {
        &self.rows
    }

    /// The *agree set* of two rows: the set of attributes on which they take the same
    /// value.
    pub fn agree_set(&self, i: usize, j: usize) -> VertexSet {
        let mut s = VertexSet::empty(self.num_attributes);
        for a in 0..self.num_attributes {
            if self.rows[i][a] == self.rows[j][a] {
                s.insert(Vertex::from(a));
            }
        }
        s
    }

    /// Whether two rows agree on every attribute of `attrs`.
    pub fn rows_agree_on(&self, i: usize, j: usize, attrs: &VertexSet) -> bool {
        attrs
            .iter()
            .all(|a| self.rows[i][a.index()] == self.rows[j][a.index()])
    }

    /// Whether `attrs` is a key: no two distinct rows agree on all of `attrs`.
    ///
    /// The empty set is a key iff the instance has at most one row.
    pub fn is_key(&self, attrs: &VertexSet) -> bool {
        for i in 0..self.rows.len() {
            for j in i + 1..self.rows.len() {
                if self.rows_agree_on(i, j, attrs) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether `attrs` is a *minimal* key.
    pub fn is_minimal_key(&self, attrs: &VertexSet) -> bool {
        if !self.is_key(attrs) {
            return false;
        }
        attrs.iter().all(|a| !self.is_key(&attrs.without(a)))
    }
}

impl fmt::Display for RelationInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# attributes={} rows={}",
            self.num_attributes,
            self.rows.len()
        )?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" "))?;
        }
        Ok(())
    }
}

/// The classic textbook example used throughout this crate's tests:
/// attributes (name, dept, room, phone) with keys {name} … actually with two minimal
/// keys: {0,1} and {2}.
#[cfg(test)]
pub(crate) fn sample_instance() -> RelationInstance {
    // columns: A B C D
    RelationInstance::from_rows(
        4,
        vec![
            vec![1, 10, 100, 7],
            vec![1, 20, 200, 7],
            vec![2, 10, 300, 7],
            vec![2, 20, 400, 8],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qld_hypergraph::vset;

    #[test]
    fn agree_sets() {
        let r = sample_instance();
        assert_eq!(r.num_attributes(), 4);
        assert_eq!(r.num_rows(), 4);
        // rows 0 and 1 agree on A and D
        assert_eq!(r.agree_set(0, 1), vset![4; 0, 3]);
        // rows 0 and 2 agree on B and D
        assert_eq!(r.agree_set(0, 2), vset![4; 1, 3]);
        // rows 0 and 3 agree on nothing
        assert_eq!(r.agree_set(0, 3), vset![4;]);
        // rows 1 and 2 agree on D only
        assert_eq!(r.agree_set(1, 2), vset![4; 3]);
        // rows 2 and 3 agree on A
        assert_eq!(r.agree_set(2, 3), vset![4; 0]);
        assert!(r.rows_agree_on(0, 1, &vset![4; 0]));
        assert!(!r.rows_agree_on(0, 1, &vset![4; 1]));
    }

    #[test]
    fn keys_and_minimal_keys() {
        let r = sample_instance();
        // C has distinct values everywhere → {C} is a minimal key.
        assert!(r.is_key(&vset![4; 2]));
        assert!(r.is_minimal_key(&vset![4; 2]));
        // {A,B} is a key (all pairs differ on A or B), and minimal.
        assert!(r.is_key(&vset![4; 0, 1]));
        assert!(r.is_minimal_key(&vset![4; 0, 1]));
        // {A} and {B} are not keys, {A,B,C} is a key but not minimal.
        assert!(!r.is_key(&vset![4; 0]));
        assert!(!r.is_key(&vset![4; 1]));
        assert!(r.is_key(&vset![4; 0, 1, 2]));
        assert!(!r.is_minimal_key(&vset![4; 0, 1, 2]));
        // {D} is not a key.
        assert!(!r.is_key(&vset![4; 3]));
        // the empty set is a key only for tiny instances
        assert!(!r.is_key(&vset![4;]));
        let single = RelationInstance::from_rows(2, vec![vec![1, 2]]);
        assert!(single.is_key(&vset![2;]));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut r = RelationInstance::new(3);
        r.add_row(vec![1, 2]);
    }

    #[test]
    fn display_lists_rows() {
        let r = sample_instance();
        let text = r.to_string();
        assert!(text.contains("attributes=4 rows=4"));
        assert_eq!(text.lines().count(), 5);
    }
}
