//! Minimal keys as minimal transversals.
//!
//! For an explicitly given instance `R`, a set of attributes `K` is a key iff, for
//! every pair of distinct rows, `K` contains an attribute on which they disagree —
//! i.e. `K` is a transversal of the *disagreement hypergraph*
//! `D(R) = { S − ag(t, t') | t ≠ t' rows of R }` (the complements of the agree sets).
//! The minimal keys are therefore exactly `tr(D(R))`, which is how Proposition 1.2
//! connects key discovery to the `DUAL` problem.

use crate::instance::RelationInstance;
use alloc::vec::Vec;
use qld_hypergraph::transversal::minimal_transversals;
use qld_hypergraph::{Hypergraph, VertexSet};

/// The family of **maximal** agree sets of the instance (the interesting part of the
/// agree-set structure: a set is a key iff it is contained in no agree set, iff it is
/// contained in no *maximal* agree set).
pub fn maximal_agree_sets(r: &RelationInstance) -> Hypergraph {
    let n = r.num_attributes();
    let mut family = Hypergraph::new(n);
    for i in 0..r.num_rows() {
        for j in i + 1..r.num_rows() {
            family.add_edge(r.agree_set(i, j));
        }
    }
    // Keep only the inclusion-maximal sets: minimize the complement family and flip
    // back (equivalently, drop every agree set contained in another one).
    let mut maximal: Vec<VertexSet> = Vec::new();
    'outer: for e in family.edges() {
        let mut k = 0;
        while k < maximal.len() {
            if e.is_subset(&maximal[k]) {
                continue 'outer;
            }
            if maximal[k].is_subset(e) {
                maximal.swap_remove(k);
            } else {
                k += 1;
            }
        }
        maximal.push(e.clone());
    }
    Hypergraph::from_edges(n, maximal)
}

/// The disagreement hypergraph `D(R)`: complements of the **maximal** agree sets.
///
/// (Complementing only the maximal agree sets yields the minimization of the full
/// disagreement family, which is all the transversal computation needs.)
pub fn disagreement_hypergraph(r: &RelationInstance) -> Hypergraph {
    maximal_agree_sets(r).complement_edges().minimize()
}

/// All minimal keys of the instance, computed exactly as `tr(D(R))`.
pub fn minimal_keys_exact(r: &RelationInstance) -> Hypergraph {
    minimal_transversals(&disagreement_hypergraph(r))
}

/// All minimal keys by brute force over the subset lattice (ground truth for ≤ 20
/// attributes).
pub fn minimal_keys_brute(r: &RelationInstance) -> Hypergraph {
    let n = r.num_attributes();
    assert!(
        n <= 20,
        "brute-force key enumeration limited to 20 attributes"
    );
    let mut keys = Vec::new();
    for s in VertexSet::all_subsets(n) {
        if r.is_minimal_key(&s) {
            keys.push(s);
        }
    }
    Hypergraph::from_edges(n, keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::sample_instance;
    use qld_hypergraph::vset;

    #[test]
    fn maximal_agree_sets_of_the_sample() {
        let r = sample_instance();
        let m = maximal_agree_sets(&r);
        assert!(m.contains_edge(&vset![4; 0, 3]));
        assert!(m.contains_edge(&vset![4; 1, 3]));
        assert_eq!(m.num_edges(), 2);
        assert!(m.is_simple());
    }

    #[test]
    fn disagreement_and_minimal_keys() {
        let r = sample_instance();
        let d = disagreement_hypergraph(&r);
        assert!(d.contains_edge(&vset![4; 1, 2]));
        assert!(d.contains_edge(&vset![4; 0, 2]));
        let keys = minimal_keys_exact(&r);
        assert!(keys.contains_edge(&vset![4; 2]));
        assert!(keys.contains_edge(&vset![4; 0, 1]));
        assert_eq!(keys.num_edges(), 2);
    }

    #[test]
    fn exact_matches_brute_force() {
        for seed in 0..6 {
            let r = crate::generators::random_instance(5, 8, 3, seed);
            let exact = minimal_keys_exact(&r);
            let brute = minimal_keys_brute(&r);
            assert!(exact.same_edge_set(&brute), "seed {seed}");
            // every reported key is a minimal key
            for k in exact.edges() {
                assert!(r.is_minimal_key(k));
            }
        }
    }

    #[test]
    fn degenerate_instances() {
        // One row: every pair-set is vacuous, the only minimal key is ∅.
        let one = RelationInstance::from_rows(3, vec![vec![1, 2, 3]]);
        let keys = minimal_keys_exact(&one);
        assert_eq!(keys.num_edges(), 1);
        assert!(keys.edge(0).is_empty());
        // Two identical rows: no key exists at all.
        let dup = RelationInstance::from_rows(2, vec![vec![1, 2], vec![1, 2]]);
        let keys = minimal_keys_exact(&dup);
        assert_eq!(keys.num_edges(), 0);
        assert!(minimal_keys_brute(&dup).same_edge_set(&keys));
    }
}
