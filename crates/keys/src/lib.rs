//! # qld-keys
//!
//! The relational-key application of the monotone duality problem (Section 1 of the
//! paper, Proposition 1.2): minimal keys of explicitly given relational instances, and
//! the *additional key for instance* problem.
//!
//! * [`RelationInstance`] — explicit tables, agree sets, key predicates;
//! * [`keys`] — maximal agree sets, the disagreement hypergraph, and exact minimal-key
//!   enumeration as `tr(D(R))`;
//! * [`mod@additional_key`] — the reduction of the additional-key problem to `DUAL`
//!   (`K = tr(D(R))`?), with a concrete new minimal key recovered from the duality
//!   witness, and the incremental enumeration of all minimal keys it enables.

#![cfg_attr(all(not(feature = "std"), not(test)), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

extern crate alloc;

pub mod additional_key;
pub mod generators;
pub mod instance;
pub mod keys;

pub use additional_key::{
    additional_key, additional_key_with, enumerate_minimal_keys_with, AdditionalKey,
};
pub use instance::RelationInstance;
pub use keys::{
    disagreement_hypergraph, maximal_agree_sets, minimal_keys_brute, minimal_keys_exact,
};
