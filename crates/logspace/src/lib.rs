//! # qld-logspace
//!
//! Space-metered computation model for the reproduction of Gottlob's
//! *Deciding Monotone Duality … in Quadratic Logspace* (PODS 2013).
//!
//! The paper's results are **space** bounds, so reproducing them requires a way to
//! *measure* work-tape usage of the algorithms, not just run them.  This crate provides
//! the accounting substrate:
//!
//! * [`SpaceMeter`] — charges every live register/counter in bits and records the peak
//!   (read-only input and write-only output are free, as in the `DSPACE[·]` model);
//! * [`LogRegister`], [`BitRegister`], [`Frame`] — metered `O(log n)`-bit registers, the
//!   only mutable state the space-efficient algorithms are allowed to keep;
//! * [`pipeline`] — the iterated-composition construction of Lemma 3.1
//!   (`[[FDSPACE[log n]_pol]]^log ⊆ FDSPACE[log² n]`), generic over
//!   [`pipeline::LogspaceStage`] transducers, with both the recompute-on-demand strategy
//!   (the lemma) and a materializing strategy (the contrast measured in experiment E3);
//! * [`model`] — the complexity classes of Figure 1 and their inclusion structure.
//!
//! `qld-core` builds the `pathnode` / `decompose` algorithms of Section 4 on top of
//! these primitives.

#![cfg_attr(all(not(feature = "std"), not(test)), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

extern crate alloc;

pub mod meter;
pub mod model;
pub mod pipeline;
pub mod register;

pub use meter::{bits_for, Allocation, SpaceMeter};
pub use model::ComplexityClass;
pub use register::{BitRegister, Frame, LogRegister};
