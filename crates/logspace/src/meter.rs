//! Bit-accurate workspace accounting.
//!
//! Space-bounded complexity classes such as `DSPACE[log² n]` charge only the bits held
//! on the *work tape*: the read-only input tape and the write-only output tape are free.
//! [`SpaceMeter`] reproduces exactly that accounting convention for the algorithms in
//! this repository.  Every register, counter, and path descriptor that an algorithm
//! keeps while it runs is registered with the meter (usually through the RAII guards in
//! [`crate::register`]); the meter tracks the current total and the peak.  Read-only
//! inputs (the hypergraphs `G` and `H`) are *not* charged, and neither are emitted
//! outputs, mirroring the Turing-machine model of the paper.

use alloc::rc::Rc;
use core::cell::RefCell;

#[derive(Debug, Default)]
struct MeterState {
    current_bits: u64,
    peak_bits: u64,
    total_allocations: u64,
}

/// A shareable handle to a workspace accountant.
///
/// Cloning the meter clones the *handle*: all clones charge the same underlying
/// accumulator, which is what the oracle chain of `qld-core` needs (every level of the
/// chain holds a handle to the same meter).
#[derive(Clone, Debug, Default)]
pub struct SpaceMeter {
    state: Rc<RefCell<MeterState>>,
}

impl SpaceMeter {
    /// Creates a fresh meter with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `bits` of workspace and returns a guard that releases them when dropped.
    pub fn alloc(&self, bits: u64) -> Allocation {
        {
            let mut s = self.state.borrow_mut();
            s.current_bits += bits;
            s.total_allocations += 1;
            if s.current_bits > s.peak_bits {
                s.peak_bits = s.current_bits;
            }
        }
        Allocation {
            meter: self.clone(),
            bits,
        }
    }

    /// Charges `bits` without a guard (the caller promises to call [`SpaceMeter::free`]).
    ///
    /// Prefer [`SpaceMeter::alloc`]; this exists for data structures that own their
    /// charge across method boundaries (e.g. a register stored in a struct).
    pub fn charge(&self, bits: u64) {
        let mut s = self.state.borrow_mut();
        s.current_bits += bits;
        s.total_allocations += 1;
        if s.current_bits > s.peak_bits {
            s.peak_bits = s.current_bits;
        }
    }

    /// Releases `bits` previously charged with [`SpaceMeter::charge`].
    pub fn free(&self, bits: u64) {
        let mut s = self.state.borrow_mut();
        debug_assert!(
            s.current_bits >= bits,
            "freeing more bits than currently allocated"
        );
        s.current_bits = s.current_bits.saturating_sub(bits);
    }

    /// The number of bits currently allocated.
    pub fn current_bits(&self) -> u64 {
        self.state.borrow().current_bits
    }

    /// The peak number of bits that were simultaneously allocated.
    pub fn peak_bits(&self) -> u64 {
        self.state.borrow().peak_bits
    }

    /// How many allocations have been performed (a cheap activity indicator).
    pub fn total_allocations(&self) -> u64 {
        self.state.borrow().total_allocations
    }

    /// Resets current and peak usage to zero.
    pub fn reset(&self) {
        let mut s = self.state.borrow_mut();
        s.current_bits = 0;
        s.peak_bits = 0;
        s.total_allocations = 0;
    }
}

/// RAII guard for a metered allocation; releases the bits when dropped.
#[derive(Debug)]
pub struct Allocation {
    meter: SpaceMeter,
    bits: u64,
}

impl Allocation {
    /// The number of bits held by this allocation.
    pub fn bits(&self) -> u64 {
        self.bits
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        self.meter.free(self.bits);
    }
}

/// Number of bits needed to store a value in `0..=max_value` (at least 1).
pub fn bits_for(max_value: u64) -> u64 {
    (64 - max_value.leading_zeros() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_drop_tracks_peak() {
        let m = SpaceMeter::new();
        assert_eq!(m.current_bits(), 0);
        {
            let _a = m.alloc(10);
            assert_eq!(m.current_bits(), 10);
            {
                let _b = m.alloc(5);
                assert_eq!(m.current_bits(), 15);
                assert_eq!(m.peak_bits(), 15);
            }
            assert_eq!(m.current_bits(), 10);
        }
        assert_eq!(m.current_bits(), 0);
        assert_eq!(m.peak_bits(), 15);
        assert_eq!(m.total_allocations(), 2);
    }

    #[test]
    fn clones_share_the_accumulator() {
        let m = SpaceMeter::new();
        let m2 = m.clone();
        let _a = m.alloc(8);
        let _b = m2.alloc(8);
        assert_eq!(m.current_bits(), 16);
        assert_eq!(m2.peak_bits(), 16);
    }

    #[test]
    fn manual_charge_and_free() {
        let m = SpaceMeter::new();
        m.charge(32);
        assert_eq!(m.current_bits(), 32);
        m.free(32);
        assert_eq!(m.current_bits(), 0);
        assert_eq!(m.peak_bits(), 32);
        m.reset();
        assert_eq!(m.peak_bits(), 0);
    }

    #[test]
    fn bits_for_ranges() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }
}
