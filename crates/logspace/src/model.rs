//! The complexity classes of Figure 1 and their inclusion structure.
//!
//! Section 6 of the paper summarizes the landscape in a diagram (Figure 1) relating the
//! new upper bounds for `DUAL` to the classical classes.  This module encodes exactly
//! the classes appearing in that figure and the inclusion edges it draws, so the figure
//! can be regenerated (E1) and the partial-order claims (Theorem 5.2) can be checked
//! programmatically.

use alloc::vec;
use alloc::vec::Vec;
use serde::{Deserialize, Serialize};

/// The complexity classes appearing in Figure 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComplexityClass {
    /// Deterministic logarithmic space.
    Logspace,
    /// Deterministic polynomial time.
    Ptime,
    /// Guess `O(log² n)` bits, verify in `LOGSPACE`.
    GcLog2Logspace,
    /// Guess `O(log² n)` bits, verify in `[[LOGSPACE_pol]]^log` — the paper's tightest
    /// upper bound for `DUAL` (Theorem 5.1).
    GcLog2LogspacePolLog,
    /// Deterministic space `O(log² n)` — the paper's headline bound (Theorem 4.1).
    DspaceLog2,
    /// Guess `O(log² n)` bits, verify in `PTIME` — equals `β₂P` (Eiter–Gottlob–Makino).
    GcLog2Ptime,
    /// Nondeterministic polynomial time.
    Np,
    /// Polynomial space.
    Pspace,
}

impl ComplexityClass {
    /// All classes, in the bottom-to-top order used for rendering the figure.
    pub fn all() -> [ComplexityClass; 8] {
        use ComplexityClass::*;
        [
            Logspace,
            GcLog2Logspace,
            GcLog2LogspacePolLog,
            Ptime,
            DspaceLog2,
            GcLog2Ptime,
            Np,
            Pspace,
        ]
    }

    /// The notation used in the paper.
    pub fn notation(self) -> &'static str {
        use ComplexityClass::*;
        match self {
            Logspace => "LOGSPACE",
            Ptime => "PTIME",
            GcLog2Logspace => "GC(log²n, LOGSPACE)",
            GcLog2LogspacePolLog => "GC(log²n, [[LOGSPACE_pol]]^log)",
            DspaceLog2 => "DSPACE[log²n]",
            GcLog2Ptime => "GC(log²n, PTIME) = β₂P",
            Np => "NP",
            Pspace => "PSPACE",
        }
    }

    /// Whether the class is one of the two *new* upper bounds contributed by the paper.
    pub fn is_new_bound(self) -> bool {
        matches!(
            self,
            ComplexityClass::DspaceLog2 | ComplexityClass::GcLog2LogspacePolLog
        )
    }
}

/// The direct inclusion edges drawn in Figure 1 (`a ⊆ b` rendered as an ascending line
/// from `a` to `b`).
pub fn figure1_inclusions() -> Vec<(ComplexityClass, ComplexityClass)> {
    use ComplexityClass::*;
    vec![
        (Logspace, GcLog2Logspace),
        (Logspace, Ptime),
        (GcLog2Logspace, GcLog2LogspacePolLog),
        // Theorem 5.2: the new guess-and-check class sits below both earlier bounds.
        (GcLog2LogspacePolLog, DspaceLog2),
        (GcLog2LogspacePolLog, GcLog2Ptime),
        (Ptime, GcLog2Ptime),
        (GcLog2Ptime, Np),
        (DspaceLog2, Pspace),
        (Np, Pspace),
    ]
}

/// The classes the paper proves (or recalls) to contain `DUAL` / its complement.
pub fn dual_upper_bounds() -> Vec<ComplexityClass> {
    use ComplexityClass::*;
    vec![GcLog2LogspacePolLog, DspaceLog2, GcLog2Ptime, Pspace]
}

/// Reflexive–transitive closure of the Figure 1 inclusions, as a containment test.
pub fn included_in(a: ComplexityClass, b: ComplexityClass) -> bool {
    if a == b {
        return true;
    }
    let edges = figure1_inclusions();
    // Simple DFS over at most 8 nodes.
    let mut stack = vec![a];
    let mut seen = Vec::new();
    while let Some(c) = stack.pop() {
        if c == b {
            return true;
        }
        if seen.contains(&c) {
            continue;
        }
        seen.push(c);
        for (x, y) in &edges {
            if *x == c {
                stack.push(*y);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ComplexityClass::*;

    #[test]
    fn all_classes_have_distinct_notation() {
        let notations: Vec<&str> = ComplexityClass::all()
            .iter()
            .map(|c| c.notation())
            .collect();
        let mut dedup = notations.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), notations.len());
    }

    #[test]
    fn new_bounds_are_flagged() {
        assert!(DspaceLog2.is_new_bound());
        assert!(GcLog2LogspacePolLog.is_new_bound());
        assert!(!Ptime.is_new_bound());
        assert!(!GcLog2Ptime.is_new_bound());
    }

    #[test]
    fn theorem_5_2_inclusions_hold_in_the_diagram() {
        // GC(log²n, [[LOGSPACE_pol]]^log) ⊆ DSPACE[log²n] ∩ GC(log²n, PTIME)
        assert!(included_in(GcLog2LogspacePolLog, DspaceLog2));
        assert!(included_in(GcLog2LogspacePolLog, GcLog2Ptime));
    }

    #[test]
    fn everything_is_in_pspace() {
        for c in ComplexityClass::all() {
            assert!(included_in(c, Pspace), "{c:?}");
        }
    }

    #[test]
    fn no_downward_inclusions() {
        assert!(!included_in(Pspace, Logspace));
        assert!(!included_in(DspaceLog2, Logspace));
        assert!(!included_in(GcLog2Ptime, Ptime));
    }

    #[test]
    fn incomparable_pairs_stay_incomparable() {
        // The paper stresses that DSPACE[log²n] and GC(log²n, PTIME) are believed
        // incomparable; the diagram draws no inclusion between them.
        assert!(!included_in(DspaceLog2, GcLog2Ptime));
        assert!(!included_in(GcLog2Ptime, DspaceLog2));
        // Likewise PTIME vs DSPACE[log²n].
        assert!(!included_in(Ptime, DspaceLog2));
        assert!(!included_in(DspaceLog2, Ptime));
    }

    #[test]
    fn dual_bounds_are_classes_of_the_figure() {
        for c in dual_upper_bounds() {
            assert!(ComplexityClass::all().contains(&c));
        }
        // and they include the two new ones
        assert!(dual_upper_bounds().iter().any(|c| c.is_new_bound()));
    }

    #[test]
    fn reflexivity() {
        for c in ComplexityClass::all() {
            assert!(included_in(c, c));
        }
    }
}
