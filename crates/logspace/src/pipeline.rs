//! The iterated-composition pipeline of Lemma 3.1.
//!
//! Lemma 3.1 of the paper shows `[[FDSPACE[log n]_pol]]^log ⊆ FDSPACE[log² n]`: a
//! logarithmic number of self-compositions of a logspace function with polynomially
//! bounded intermediate outputs can be evaluated in quadratic logspace.  The proof never
//! stores an intermediate output `wᵢ = fⁱ(I)`.  Instead, each pipelined stage `Pᵢ` keeps
//! only an index register `dᵢ` and a one-item output register `oᵢ`; whenever stage `i`
//! needs the `j`-th item of its input it asks stage `i−1` to (re)compute exactly that
//! item.
//!
//! This module implements that construction generically.  An intermediate string is
//! modelled as a sequence of small items (each `O(log n)` bits) behind the
//! [`ItemOracle`] trait; a [`LogspaceStage`] computes a single output item from an input
//! oracle using only metered registers; and [`iterated`] evaluates `f^rounds` by
//! chaining oracles, charging only the per-stage registers — which is how the
//! `pathnode` procedure of `qld-core` achieves its quadratic-logspace bound.
//! [`iterated_materialized`] is the contrasting strategy that stores every intermediate
//! output (and charges for it), used by the space-scaling experiment (E3) to show the
//! gap.

use crate::meter::{bits_for, SpaceMeter};
use crate::register::LogRegister;
use alloc::vec::Vec;

/// Read access to a (virtual) sequence of small items.
///
/// Items are `u64`, but stages should only store values bounded polynomially in the
/// input size, so that a register holding one item costs `O(log n)` bits.
pub trait ItemOracle {
    /// Number of items in the sequence.
    fn len(&self) -> usize;
    /// The `i`-th item (0-based).  Panics if out of range.
    fn item(&self, i: usize) -> u64;
    /// Whether the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An [`ItemOracle`] backed by a slice (the read-only input tape: not metered).
#[derive(Debug, Clone, Copy)]
pub struct SliceOracle<'a> {
    items: &'a [u64],
}

impl<'a> SliceOracle<'a> {
    /// Wraps a slice.
    pub fn new(items: &'a [u64]) -> Self {
        SliceOracle { items }
    }
}

impl ItemOracle for SliceOracle<'_> {
    fn len(&self) -> usize {
        self.items.len()
    }
    fn item(&self, i: usize) -> u64 {
        self.items[i]
    }
}

/// A function `f` on item sequences whose output items are individually recomputable —
/// the `FDSPACE[log n]_pol` functions of Section 3, at item granularity.
///
/// Implementations must only allocate metered registers (e.g. [`LogRegister`]) while
/// answering; they may freely *read* the input oracle, which models the input tape of
/// the stage.
pub trait LogspaceStage {
    /// Length of `f(input)`.
    fn output_len(&self, input: &dyn ItemOracle, meter: &SpaceMeter) -> usize;
    /// The `index`-th item of `f(input)`.
    fn output_item(&self, input: &dyn ItemOracle, index: usize, meter: &SpaceMeter) -> u64;
}

/// An oracle presenting `f^round(base)` without materializing it.
struct RecomputingOracle<'a, S: LogspaceStage + ?Sized> {
    stage: &'a S,
    base: &'a dyn ItemOracle,
    round: usize,
    meter: SpaceMeter,
}

impl<S: LogspaceStage + ?Sized> ItemOracle for RecomputingOracle<'_, S> {
    fn len(&self) -> usize {
        if self.round == 0 {
            self.base.len()
        } else {
            let prev = RecomputingOracle {
                stage: self.stage,
                base: self.base,
                round: self.round - 1,
                meter: self.meter.clone(),
            };
            self.stage.output_len(&prev, &self.meter)
        }
    }

    fn item(&self, i: usize) -> u64 {
        if self.round == 0 {
            self.base.item(i)
        } else {
            let prev = RecomputingOracle {
                stage: self.stage,
                base: self.base,
                round: self.round - 1,
                meter: self.meter.clone(),
            };
            // The per-stage frame of the Lemma 3.1 construction: the index register dᵢ
            // and the single-item output register oᵢ.
            let max_item = u64::MAX >> 1;
            let _d =
                LogRegister::with_value(&self.meter, self.base.len().max(i) as u64 + 1, i as u64);
            let _o = LogRegister::new(&self.meter, max_item);
            self.stage.output_item(&prev, i, &self.meter)
        }
    }
}

/// Evaluates `f^rounds(base)` with the Lemma 3.1 strategy: intermediate outputs are
/// recomputed on demand, so the metered space is `O(rounds · log n)` (plus whatever the
/// stage itself allocates), at the price of quasi-polynomial recomputation time.
pub fn iterated<S: LogspaceStage + ?Sized>(
    stage: &S,
    rounds: usize,
    base: &[u64],
    meter: &SpaceMeter,
) -> Vec<u64> {
    let base_oracle = SliceOracle::new(base);
    let top = RecomputingOracle {
        stage,
        base: &base_oracle,
        round: rounds,
        meter: meter.clone(),
    };
    // Writing to the output tape is free; only the loop index is charged.
    let len = top.len();
    let mut out = Vec::with_capacity(len);
    let mut idx = LogRegister::new(meter, len.max(1) as u64);
    while (idx.get() as usize) < len {
        out.push(top.item(idx.get() as usize));
        idx.increment();
    }
    out
}

/// Evaluates `f^rounds(base)` by materializing every intermediate sequence and charging
/// the meter for it — the strategy Lemma 3.1 exists to avoid.  Provided so experiments
/// can report the space gap between the two strategies on identical workloads.
pub fn iterated_materialized<S: LogspaceStage + ?Sized>(
    stage: &S,
    rounds: usize,
    base: &[u64],
    meter: &SpaceMeter,
) -> Vec<u64> {
    let mut current: Vec<u64> = base.to_vec();
    // Charge for holding the current intermediate output on the work tape.
    let mut charge = charge_for_items(&current);
    meter.charge(charge);
    for _ in 0..rounds {
        let oracle = SliceOracle::new(&current);
        let len = stage.output_len(&oracle, meter);
        let mut next = Vec::with_capacity(len);
        for i in 0..len {
            next.push(stage.output_item(&oracle, i, meter));
        }
        let next_charge = charge_for_items(&next);
        meter.charge(next_charge); // both strings resident while copying
        meter.free(charge);
        charge = next_charge;
        current = next;
    }
    meter.free(charge);
    current
}

fn charge_for_items(items: &[u64]) -> u64 {
    items.iter().map(|&v| bits_for(v)).sum::<u64>().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy stage: item i of the output is input[i] + input[(i+1) mod len]  — a local
    /// smoothing pass whose iterates are easy to check.
    struct NeighbourSum;

    impl LogspaceStage for NeighbourSum {
        fn output_len(&self, input: &dyn ItemOracle, _meter: &SpaceMeter) -> usize {
            input.len()
        }
        fn output_item(&self, input: &dyn ItemOracle, index: usize, meter: &SpaceMeter) -> u64 {
            let _j = LogRegister::new(meter, input.len() as u64);
            let next = (index + 1) % input.len();
            input.item(index) + input.item(next)
        }
    }

    /// Toy stage with shrinking output: keeps every second item (so output lengths are
    /// data-dependent across rounds).
    struct Halve;

    impl LogspaceStage for Halve {
        fn output_len(&self, input: &dyn ItemOracle, _meter: &SpaceMeter) -> usize {
            input.len().div_ceil(2)
        }
        fn output_item(&self, input: &dyn ItemOracle, index: usize, _meter: &SpaceMeter) -> u64 {
            input.item(2 * index)
        }
    }

    fn reference_neighbour_sum(rounds: usize, base: &[u64]) -> Vec<u64> {
        let mut v = base.to_vec();
        for _ in 0..rounds {
            let n = v.len();
            v = (0..n).map(|i| v[i] + v[(i + 1) % n]).collect();
        }
        v
    }

    #[test]
    fn recomputing_matches_reference() {
        let base = [1u64, 2, 3, 4, 5];
        for rounds in 0..5 {
            let meter = SpaceMeter::new();
            let got = iterated(&NeighbourSum, rounds, &base, &meter);
            assert_eq!(
                got,
                reference_neighbour_sum(rounds, &base),
                "rounds={rounds}"
            );
            assert_eq!(meter.current_bits(), 0, "all registers released");
        }
    }

    #[test]
    fn materialized_matches_recomputing() {
        let base = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let m1 = SpaceMeter::new();
        let m2 = SpaceMeter::new();
        let a = iterated(&NeighbourSum, 3, &base, &m1);
        let b = iterated_materialized(&NeighbourSum, 3, &base, &m2);
        assert_eq!(a, b);
    }

    #[test]
    fn shrinking_stage_lengths_are_respected() {
        let base: Vec<u64> = (0..16).collect();
        let meter = SpaceMeter::new();
        let out = iterated(&Halve, 3, &base, &meter);
        // After 3 halvings of 16 items: indices 0, 8 survive → values 0 and 8
        assert_eq!(out, vec![0, 8]);
    }

    #[test]
    fn recomputing_space_grows_linearly_in_rounds() {
        // peak space of the recomputing strategy ≈ rounds × per-stage frame,
        // not the size of the intermediate strings.
        let base: Vec<u64> = (0..64).collect();
        let mut peaks = Vec::new();
        for rounds in 1..=4 {
            let meter = SpaceMeter::new();
            let _ = iterated(&NeighbourSum, rounds, &base, &meter);
            peaks.push(meter.peak_bits());
        }
        // Monotone and roughly additive per round.
        assert!(peaks.windows(2).all(|w| w[1] >= w[0]));
        let per_round = peaks[1] - peaks[0];
        let predicted = peaks[0] + 3 * per_round;
        let actual = peaks[3];
        // within a factor of 2 of an affine extrapolation
        assert!(actual <= 2 * predicted, "peaks={peaks:?}");
    }

    #[test]
    fn materialized_space_exceeds_recomputing_space_on_long_inputs() {
        let base: Vec<u64> = (1..=256).collect();
        let rec = SpaceMeter::new();
        let mat = SpaceMeter::new();
        let _ = iterated(&NeighbourSum, 2, &base, &rec);
        let _ = iterated_materialized(&NeighbourSum, 2, &base, &mat);
        assert!(
            mat.peak_bits() > rec.peak_bits(),
            "materialized {} should exceed recomputing {}",
            mat.peak_bits(),
            rec.peak_bits()
        );
    }

    #[test]
    fn zero_rounds_is_identity() {
        let base = [7u64, 8, 9];
        let meter = SpaceMeter::new();
        assert_eq!(iterated(&Halve, 0, &base, &meter), base.to_vec());
        let meter2 = SpaceMeter::new();
        assert_eq!(
            iterated_materialized(&Halve, 0, &base, &meter2),
            base.to_vec()
        );
    }

    #[test]
    fn slice_oracle_basics() {
        let s = SliceOracle::new(&[5, 6]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.item(1), 6);
        let e = SliceOracle::new(&[]);
        assert!(e.is_empty());
    }
}
