//! Metered registers and counters.
//!
//! The work tape of a logspace machine holds a constant number of registers, each wide
//! enough to store an index or counter bounded by a polynomial in the input size, i.e.
//! `O(log n)` bits each.  [`LogRegister`] models one such register: it declares its
//! value range up front, charges `⌈log₂(range)⌉` bits to the [`SpaceMeter`] for as long
//! as it lives, and releases them on drop.

use crate::meter::{bits_for, SpaceMeter};
use alloc::vec::Vec;

/// A single metered register holding a value in `0..=max_value`.
#[derive(Debug)]
pub struct LogRegister {
    value: u64,
    max_value: u64,
    bits: u64,
    meter: SpaceMeter,
}

impl LogRegister {
    /// Allocates a register able to hold values in `0..=max_value`, charging the meter.
    pub fn new(meter: &SpaceMeter, max_value: u64) -> Self {
        let bits = bits_for(max_value);
        meter.charge(bits);
        LogRegister {
            value: 0,
            max_value,
            bits,
            meter: meter.clone(),
        }
    }

    /// Allocates a register initialized to `value`.
    pub fn with_value(meter: &SpaceMeter, max_value: u64, value: u64) -> Self {
        let mut r = Self::new(meter, max_value);
        r.set(value);
        r
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Sets the value (panics if it exceeds the declared range).
    pub fn set(&mut self, value: u64) {
        assert!(
            value <= self.max_value,
            "register overflow: {value} > {}",
            self.max_value
        );
        self.value = value;
    }

    /// Increments by one (panics on overflow of the declared range).
    pub fn increment(&mut self) {
        self.set(self.value + 1);
    }

    /// Decrements by one, saturating at zero.
    pub fn decrement(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// Adds `delta` (panics on overflow of the declared range).
    pub fn add(&mut self, delta: u64) {
        self.set(self.value + delta);
    }

    /// The width of this register in bits (what it costs on the meter).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// The largest value this register may hold.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }
}

impl Drop for LogRegister {
    fn drop(&mut self) {
        self.meter.free(self.bits);
    }
}

/// A metered single-bit flag.
#[derive(Debug)]
pub struct BitRegister {
    value: bool,
    meter: SpaceMeter,
}

impl BitRegister {
    /// Allocates a one-bit register, charging the meter.
    pub fn new(meter: &SpaceMeter) -> Self {
        meter.charge(1);
        BitRegister {
            value: false,
            meter: meter.clone(),
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> bool {
        self.value
    }

    /// Sets the value.
    #[inline]
    pub fn set(&mut self, value: bool) {
        self.value = value;
    }
}

impl Drop for BitRegister {
    fn drop(&mut self) {
        self.meter.free(1);
    }
}

/// A small fixed bundle of registers representing one "procedure frame" of a logspace
/// subroutine: the paper's proof of Lemma 3.1 allots each pipelined stage `Pᵢ` a
/// dedicated index register `dᵢ`, an output register `oᵢ`, and "a constant number of
/// auxiliary counters and pointers".  [`Frame`] is that allotment, created per stage.
#[derive(Debug)]
pub struct Frame {
    registers: Vec<LogRegister>,
}

impl Frame {
    /// Creates a frame with `count` registers, each able to index an object of size
    /// `max_value`.
    pub fn new(meter: &SpaceMeter, count: usize, max_value: u64) -> Self {
        let registers = (0..count)
            .map(|_| LogRegister::new(meter, max_value))
            .collect();
        Frame { registers }
    }

    /// Access to the `i`-th register of the frame.
    pub fn reg(&mut self, i: usize) -> &mut LogRegister {
        &mut self.registers[i]
    }

    /// Total bits charged by this frame.
    pub fn bits(&self) -> u64 {
        self.registers.iter().map(|r| r.bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_charges_and_releases() {
        let m = SpaceMeter::new();
        {
            let mut r = LogRegister::new(&m, 1000);
            assert_eq!(m.current_bits(), 10); // 1000 fits in 10 bits
            r.set(999);
            r.increment();
            assert_eq!(r.get(), 1000);
            r.decrement();
            assert_eq!(r.get(), 999);
            assert_eq!(r.max_value(), 1000);
        }
        assert_eq!(m.current_bits(), 0);
        assert_eq!(m.peak_bits(), 10);
    }

    #[test]
    #[should_panic(expected = "register overflow")]
    fn register_overflow_panics() {
        let m = SpaceMeter::new();
        let mut r = LogRegister::new(&m, 3);
        r.set(4);
    }

    #[test]
    fn with_value_and_add() {
        let m = SpaceMeter::new();
        let mut r = LogRegister::with_value(&m, 100, 40);
        r.add(2);
        assert_eq!(r.get(), 42);
    }

    #[test]
    fn decrement_saturates() {
        let m = SpaceMeter::new();
        let mut r = LogRegister::new(&m, 10);
        r.decrement();
        assert_eq!(r.get(), 0);
    }

    #[test]
    fn bit_register() {
        let m = SpaceMeter::new();
        {
            let mut b = BitRegister::new(&m);
            assert!(!b.get());
            b.set(true);
            assert!(b.get());
            assert_eq!(m.current_bits(), 1);
        }
        assert_eq!(m.current_bits(), 0);
    }

    #[test]
    fn frame_bundles_registers() {
        let m = SpaceMeter::new();
        {
            let mut f = Frame::new(&m, 4, 255);
            assert_eq!(f.bits(), 4 * 8);
            assert_eq!(m.current_bits(), 32);
            f.reg(2).set(7);
            assert_eq!(f.reg(2).get(), 7);
        }
        assert_eq!(m.current_bits(), 0);
    }

    #[test]
    fn frame_width_is_logarithmic_in_range() {
        let m = SpaceMeter::new();
        let f_small = Frame::new(&m, 3, 15);
        let small_bits = f_small.bits();
        drop(f_small);
        let f_large = Frame::new(&m, 3, 255);
        let large_bits = f_large.bits();
        assert_eq!(small_bits, 12);
        assert_eq!(large_bits, 24);
    }
}
