//! `qld-solver` — the embeddable facade over the pure solver core.
//!
//! Everything algorithmic in the workspace — vertex sets, hypergraphs, the
//! quadratic-logspace duality solvers of Gottlob (PODS'13), the classical
//! baselines, and the three application reductions (itemset borders, minimal
//! keys, coterie domination) — lives in seven `no_std`-compatible crates.
//! This crate re-exports that surface as a single dependency with **zero
//! serving dependencies**: no sockets, no threads (unless the default `std`
//! feature is on), no cache, no protocol.
//!
//! Embedders depend on `qld-solver` alone:
//!
//! ```
//! use qld_solver::{DualitySolver, QuadLogspaceSolver, SpaceStrategy, vset};
//!
//! let g = qld_solver::Hypergraph::from_edges(3, [vset![3; 0, 1], vset![3; 2]]);
//! let h = qld_solver::Hypergraph::from_edges(3, [vset![3; 0, 2], vset![3; 1, 2]]);
//! let solver = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
//! assert!(solver.decide(&g, &h).unwrap().is_dual());
//! ```
//!
//! Feature model: the crate forwards one feature, `std` (default-on), to every
//! underlying crate.  With `--no-default-features` the whole stack is
//! `no_std` + `alloc` — suitable for `wasm32-unknown-unknown` or embedding in
//! other runtimes — and the solver answers are byte-identical to the `std`
//! build (the `std` feature only adds intra-query parallelism plumbing; the
//! sequential decision procedure is feature-free).

#![cfg_attr(all(not(feature = "std"), not(test)), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Full sub-crate surfaces, namespaced.  `pub use ... as ...` (not `extern
// crate`) so rustdoc lists them as ordinary re-exports.
pub use qld_core as core;
pub use qld_coteries as coteries;
pub use qld_datamining as datamining;
pub use qld_fk as fk;
pub use qld_hypergraph as hypergraph;
pub use qld_keys as keys;
pub use qld_logspace as logspace;

// The curated top level: the types an embedder reaches for first.
pub use qld_hypergraph::{
    vset, Hypergraph, HypergraphError, HypergraphIndex, MonotoneDnf, ProbeClass, Vertex, VertexSet,
    INLINE_BITS,
};

pub use qld_core::{
    decide_duality, is_dual, pathnode, verify_witness, BorosMakinoTreeSolver, DualError,
    DualInstance, DualityResult, DualitySolver, NonDualWitness, PathnodeOutcome,
    QuadLogspaceSolver, Side, SpaceReport, SpaceStrategy,
};
#[cfg(feature = "std")]
pub use qld_core::{InlinePool, ParallelContext, SubtaskPool, SubtaskScope};

pub use qld_fk::{AssignmentBruteSolver, BergeSolver, FkASolver};

pub use qld_logspace::SpaceMeter;

pub use qld_coteries::{check_domination, Coterie, Domination};

pub use qld_datamining::{borders_exact, AdvanceLoop, Borders};

pub use qld_keys::RelationInstance;
