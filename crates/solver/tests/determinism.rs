//! Feature-determinism: the facade's answers are byte-identical whether the
//! solver stack is built with its default `std` feature or as `no_std` +
//! `alloc` (`--no-default-features`).
//!
//! The `std` feature only adds intra-query parallelism plumbing; the decision
//! procedures themselves are feature-free.  To catch any accidental
//! divergence (a float shim, a collection swap, a cfg'd code path changing an
//! answer or witness), this test renders a transcript of solver outputs over
//! a fixed instance corpus and compares its FNV-1a digest against a golden
//! value.  CI runs the same test twice — `cargo test -p qld-solver` and
//! `cargo test -p qld-solver --no-default-features` — and both must see the
//! same digest.

use core::fmt::Write as _;

use qld_solver::hypergraph::generators::standard_corpus;
use qld_solver::{
    borders_exact, BergeSolver, DualitySolver, FkASolver, QuadLogspaceSolver, SpaceStrategy,
};

/// FNV-1a over the transcript bytes: tiny, dependency-free, and stable across
/// platforms and feature settings.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders every solver's answer (and witness, when non-dual) on every corpus
/// instance, plus a border-mining run, into one canonical string.
fn transcript() -> String {
    let mut out = String::new();
    let chain = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
    let recompute = QuadLogspaceSolver::new(SpaceStrategy::Recompute);
    let fk = FkASolver::new();
    let berge = BergeSolver;
    for inst in standard_corpus() {
        for (name, result) in [
            ("chain", chain.decide(&inst.g, &inst.h)),
            ("recompute", recompute.decide(&inst.g, &inst.h)),
            ("fk-a", fk.decide(&inst.g, &inst.h)),
            ("berge", berge.decide(&inst.g, &inst.h)),
        ] {
            let result = result.expect("corpus instances are valid");
            writeln!(out, "{}/{}: {:?}", inst.name, name, result).unwrap();
        }
    }
    // Border mining exercises the datamining reduction end to end.
    let rel = qld_solver::datamining::generators::random_relation(8, 24, 0.45, 7);
    let borders = borders_exact(&rel, 6);
    writeln!(out, "borders: {:?}", borders).unwrap();
    out
}

#[test]
fn transcript_digest_matches_golden() {
    let t = transcript();
    let digest = fnv1a(t.as_bytes());
    // Golden digest of the transcript.  If an intentional algorithm change
    // shifts it, re-record by running with `QLD_PRINT_DIGEST=1`; an
    // *unintentional* shift — in particular one that appears only under
    // `--no-default-features` — is a determinism regression.
    if std::env::var_os("QLD_PRINT_DIGEST").is_some() {
        eprintln!("transcript digest: {digest:#018x}");
        eprintln!("{t}");
    }
    assert_eq!(digest, GOLDEN, "solver transcript diverged from golden");
}

const GOLDEN: u64 = 0x9ac1_f3b8_1fdc_48b8;
