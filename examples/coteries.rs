//! Checking whether a coterie is non-dominated (Proposition 1.3).
//!
//! Run with `cargo run -p qld-harness --example coteries`.
//!
//! A coterie (a family of pairwise-intersecting, inclusion-minimal quorums) is
//! non-dominated — i.e. no other coterie is uniformly at least as available — exactly
//! when it equals its own transversal hypergraph.  This example checks several
//! classical quorum constructions and, for dominated ones, prints a concrete
//! dominating coterie.

use qld_coteries::constructions::{
    grid_coterie, majority_coterie, singleton_coterie, threshold_coterie, wheel_coterie,
};
use qld_coteries::{check_domination, dominates, Coterie, Domination};
use qld_hypergraph::vset;

fn report(name: &str, coterie: &Coterie) {
    match check_domination(coterie).expect("valid coterie") {
        Domination::NonDominated => {
            println!(
                "{name:<16} {:>3} quorums   NON-DOMINATED",
                coterie.num_quorums()
            );
        }
        Domination::DominatedBy(better) => {
            println!(
                "{name:<16} {:>3} quorums   dominated, e.g. by {} ({} quorums; dominates: {})",
                coterie.num_quorums(),
                better,
                better.num_quorums(),
                dominates(&better, coterie)
            );
        }
    }
}

fn main() {
    println!("non-domination of classical coteries (via self-duality):\n");
    report("majority(5)", &majority_coterie(5));
    report("majority(7)", &majority_coterie(7));
    report("singleton(5)", &singleton_coterie(5, 0));
    report("wheel(6)", &wheel_coterie(6));
    report("grid(2x3)", &grid_coterie(2, 3));
    report("threshold(4,3)", &threshold_coterie(4, 3));
    report("threshold(6,4)", &threshold_coterie(6, 4));

    // Availability check for a concrete failure pattern.
    let c = majority_coterie(5);
    let alive = vset![5; 0, 2, 4];
    println!(
        "\nmajority(5) still available when only nodes {alive} are alive: {}",
        c.is_available_under(&alive)
    );
    let alive = vset![5; 0, 2];
    println!(
        "majority(5) still available when only nodes {alive} are alive: {}",
        c.is_available_under(&alive)
    );
}
