//! Identifying maximal frequent and minimal infrequent itemsets (Proposition 1.1).
//!
//! Run with `cargo run -p qld-harness --example frequent_itemsets`.
//!
//! A small market-basket style relation is mined for its frequent-itemset borders by
//! the dualize-and-advance loop: every iteration asks the duality-based identification
//! check "are there additional maximal frequent or minimal infrequent itemsets?", and
//! converts the duality witness into a new border element until the answer is no.

use qld_datamining::{
    apriori, borders_exact, dualize_and_advance, identify, BooleanRelation, Identification,
    IdentificationInstance,
};

fn main() {
    // Items: 0=bread 1=milk 2=butter 3=beer 4=diapers.
    let names = ["bread", "milk", "butter", "beer", "diapers"];
    let relation = BooleanRelation::from_index_rows(
        5,
        &[
            &[0, 1, 2],
            &[0, 1],
            &[0, 2],
            &[1, 2],
            &[0, 1, 2],
            &[3, 4],
            &[0, 3, 4],
            &[1, 3, 4],
            &[0, 1, 4],
            &[0, 1, 2, 4],
        ],
    );
    let z = 3; // frequent = contained in strictly more than 3 baskets

    println!(
        "relation: {} baskets over {} items, threshold z = {z}",
        relation.num_rows(),
        relation.num_items()
    );

    let pretty = |s: &qld_hypergraph::VertexSet| {
        let items: Vec<&str> = s.iter().map(|v| names[v.index()]).collect();
        if items.is_empty() {
            "{}".to_string()
        } else {
            format!("{{{}}}", items.join(", "))
        }
    };

    // Compute both borders by repeated duality checks.
    let result = dualize_and_advance(&relation, z).expect("valid instance");
    println!(
        "\nmaximal frequent itemsets IS+ ({} duality calls):",
        result.stats.identification_calls
    );
    for s in result.maximal_frequent.edges() {
        println!("  {}   (support {})", pretty(s), relation.frequency(s));
    }
    println!("minimal infrequent itemsets IS-:");
    for s in result.minimal_infrequent.edges() {
        println!("  {}   (support {})", pretty(s), relation.frequency(s));
    }

    // Cross-check against the classical level-wise miner and exhaustive search.
    let level_wise = apriori(&relation, z);
    let exact = borders_exact(&relation, z);
    println!(
        "\nagrees with Apriori:      {}",
        result
            .maximal_frequent
            .same_edge_set(&level_wise.maximal_frequent(relation.num_items()))
    );
    println!(
        "agrees with brute force:  {}",
        result
            .maximal_frequent
            .same_edge_set(&exact.maximal_frequent)
            && result
                .minimal_infrequent
                .same_edge_set(&exact.minimal_infrequent)
    );

    // Demonstrate the identification question itself: hide one maximal frequent itemset
    // and ask whether the borders are complete.
    let mut partial = result.maximal_frequent.clone();
    let hidden = partial.remove_edge(0);
    let question = IdentificationInstance::new(&relation, z, &result.minimal_infrequent, &partial);
    println!(
        "\nhiding {} and asking the identification question …",
        pretty(&hidden)
    );
    match identify(&question).expect("valid instance") {
        Identification::Complete => println!("  answer: complete (unexpected!)"),
        Identification::Incomplete(found) => {
            println!("  answer: incomplete — discovered {found:?}")
        }
        Identification::Invalid(bad) => println!("  answer: invalid input {bad:?}"),
    }
}
