//! Discovering minimal keys of a relational instance (Proposition 1.2).
//!
//! Run with `cargo run -p qld-harness --example minimal_keys`.
//!
//! The minimal keys of an explicitly given table are the minimal transversals of its
//! disagreement hypergraph, so "have we found every minimal key?" is a `DUAL` instance.
//! This example enumerates all minimal keys of a small table one duality call at a
//! time.

use qld_core::QuadLogspaceSolver;
use qld_keys::{
    additional_key, disagreement_hypergraph, enumerate_minimal_keys_with, minimal_keys_brute,
    AdditionalKey, RelationInstance,
};

fn main() {
    // A toy "employees" table.
    let attributes = ["emp_no", "name", "dept", "room", "phone"];
    let table = RelationInstance::from_rows(
        5,
        vec![
            //        emp  name dept room phone
            vec![101, 1, 10, 201, 40],
            vec![102, 2, 10, 202, 40],
            vec![103, 3, 20, 201, 41],
            vec![104, 1, 20, 203, 41],
            vec![105, 2, 30, 204, 42],
            vec![106, 3, 30, 202, 42],
        ],
    );
    println!(
        "table with {} rows over attributes {:?}",
        table.num_rows(),
        attributes
    );

    let pretty = |s: &qld_hypergraph::VertexSet| {
        let items: Vec<&str> = s.iter().map(|v| attributes[v.index()]).collect();
        format!("{{{}}}", items.join(", "))
    };

    let d = disagreement_hypergraph(&table);
    println!(
        "\ndisagreement hypergraph D(R): {} edges over {} attributes",
        d.num_edges(),
        d.num_vertices()
    );

    let (keys, duality_calls) = enumerate_minimal_keys_with(&table, &QuadLogspaceSolver::default())
        .expect("valid instance");
    println!("\nminimal keys ({} duality calls):", duality_calls);
    for k in keys.edges() {
        println!("  {}", pretty(k));
    }
    println!(
        "matches brute-force enumeration: {}",
        keys.same_edge_set(&minimal_keys_brute(&table))
    );

    // The decision form: given all-but-one key, is there an additional one?
    if keys.num_edges() > 1 {
        let mut partial = keys.clone();
        let hidden = partial.remove_edge(0);
        println!(
            "\nhiding key {} and asking for an additional key …",
            pretty(&hidden)
        );
        match additional_key(&table, &partial).expect("valid instance") {
            AdditionalKey::Found(k) => println!("  found: {}", pretty(&k)),
            AdditionalKey::Complete => println!("  none found (unexpected!)"),
            AdditionalKey::Invalid(k) => println!("  invalid input {}", pretty(&k)),
        }
    }
}
