//! Quickstart: deciding monotone duality.
//!
//! Run with `cargo run -p qld-harness --example quickstart`.
//!
//! Builds a pair of simple hypergraphs (equivalently, irredundant monotone DNFs),
//! checks duality with the paper's quadratic-logspace solver, breaks the pair, and
//! inspects the resulting witness and certificate.

use qld_core::prelude::*;
use qld_core::witness::missing_dual_edge;
use qld_hypergraph::{Hypergraph, MonotoneDnf};
use qld_logspace::SpaceMeter;

fn main() {
    // G = {{0,1},{2,3}}  — as a monotone DNF: x0 x1 | x2 x3.
    let g = Hypergraph::from_index_edges(4, &[&[0, 1], &[2, 3]]);
    // Its minimal transversals (the dual DNF): one variable from each term.
    let h = Hypergraph::from_index_edges(4, &[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);

    println!("G = {}", MonotoneDnf::from_hypergraph(&g));
    println!("H = {}", MonotoneDnf::from_hypergraph(&h));

    // 1. Decide duality with the default (quadratic-logspace, materialize-per-level)
    //    solver, and report how much metered work space the decision used.
    let solver = QuadLogspaceSolver::default();
    let (result, space) = solver.decide_with_space(&g, &h).expect("valid instance");
    println!("\nDUAL(G, H)?           {}", result.is_dual());
    println!(
        "peak work space       {} bits  (input {} bits, {:.1}×log²n)",
        space.peak_bits,
        space.input_bits,
        space.ratio_to_log2_squared()
    );

    // 2. Remove one minimal transversal: the pair is no longer dual, and the solver
    //    exhibits a new transversal of G as the witness.
    let mut broken = h.clone();
    let removed = broken.remove_edge(0);
    println!("\nremoving {removed} from H …");
    let result = solver.decide(&g, &broken).expect("valid instance");
    let witness = result
        .witness()
        .expect("non-dual instances carry a witness");
    println!("DUAL(G, H')?          {}", result.is_dual());
    println!("witness               {witness}");
    println!(
        "witness verifies      {}",
        verify_witness(&g, &broken, witness)
    );
    println!(
        "missing dual edge     {}",
        missing_dual_edge(&g, &broken, witness).expect("transversal witness")
    );

    // 3. The same refutation as a guess-and-check certificate (Theorem 5.1): a path
    //    descriptor of O(log² n) bits that any logspace verifier can check.
    let meter = SpaceMeter::new();
    let certificate = find_certificate(&g, &broken, &meter)
        .expect("valid instance")
        .expect("non-dual instance has a certificate");
    println!("\ncertificate path      {}", certificate.path);
    println!(
        "certificate size      {} bits",
        certificate.bits(g.num_vertices(), g.num_edges())
    );
    let check = verify_certificate(
        &g,
        &broken,
        &certificate,
        SpaceStrategy::MaterializeChain,
        &meter,
    )
    .expect("valid instance");
    println!("certificate verdict   {check:?}");
}
