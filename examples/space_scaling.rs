//! Measuring the work space of the duality decision (Theorem 4.1).
//!
//! Run with `cargo run --release -p qld-harness --example space_scaling`.
//!
//! The paper's headline result is a space bound: `DUAL ∈ DSPACE[log² n]`.  This example
//! runs the quadratic-logspace solver on a growing family of dual instances and prints
//! the peak number of metered work-tape bits next to `log²` of the input size — the
//! ratio staying bounded is the empirical signature of the theorem.  For contrast it
//! also prints the resident size of the explicit decomposition tree the reference
//! solver would build.

use qld_core::instance::DualInstance;
use qld_core::path::max_branching;
use qld_core::tree::{build_tree, BuildOptions};
use qld_core::{QuadLogspaceSolver, SpaceStrategy};
use qld_hypergraph::generators;

fn main() {
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "instance", "input-bits", "log2^2(n)", "chain-bits", "ratio", "tree-bits", "ratio"
    );
    let solver = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
    for k in 1..=6 {
        let li = generators::matching_instance(k);
        let n = li.encoding_bits();
        let log2 = (n.max(2) as f64).log2();
        let log2sq = log2 * log2;

        let (result, report) = solver
            .decide_with_space(&li.g, &li.h)
            .expect("valid instance");
        assert!(result.is_dual());

        let inst = DualInstance::new(li.g.clone(), li.h.clone()).unwrap();
        let (oriented, _) = inst.oriented();
        let tree = build_tree(&oriented, &BuildOptions::default()).unwrap();
        let tree_bits = tree.resident_bits(
            oriented.num_vertices(),
            max_branching(oriented.num_vertices(), oriented.g().num_edges()),
        );

        println!(
            "{:<22} {:>10} {:>10.1} {:>12} {:>10.2} {:>12} {:>10.2}",
            li.name,
            n,
            log2sq,
            report.peak_bits,
            report.peak_bits as f64 / log2sq,
            tree_bits,
            tree_bits as f64 / log2sq,
        );
    }
    println!("\nThe solver's working set tracks log²(n) up to a small constant, while the");
    println!("explicit decomposition tree grows polynomially with the instance.");
}
