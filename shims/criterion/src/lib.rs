//! Offline stand-in for the subset of `criterion` used by this workspace (the
//! build environment has no access to crates.io).
//!
//! The shim actually measures: [`Bencher::iter`] runs a warm-up phase and then
//! times batches until the configured measurement window is filled, and each
//! benchmark prints one line with the mean time per iteration (plus a
//! throughput figure when [`BenchmarkGroup::throughput`] was set).  There are
//! no statistics, plots, or baselines — just honest wall-clock numbers, which
//! is what `cargo bench` needs to stay runnable offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let cfg = self.clone();
        run_one(&cfg, name, None, f);
        self
    }
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Units for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher<'a> {
    cfg: &'a Criterion,
    total: Duration,
    iterations: u64,
}

impl Bencher<'_> {
    /// Times `f`: warm-up first, then batches until the measurement window is
    /// filled (at least `sample_size` iterations).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up (untimed).
        let warm_deadline = Instant::now() + self.cfg.warm_up_time;
        loop {
            black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        // Measurement.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let start = Instant::now();
        while total < self.cfg.measurement_time || iters < self.cfg.sample_size as u64 {
            let t0 = Instant::now();
            black_box(f());
            total += t0.elapsed();
            iters += 1;
            // Safety valve for extremely slow bodies.
            if start.elapsed() > self.cfg.measurement_time * 4 && iters >= 1 {
                break;
            }
        }
        self.total = total;
        self.iterations = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    cfg: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        cfg,
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("bench {label:<56} (no measurement: closure never called iter)");
        return;
    }
    let mean_ns = bencher.total.as_nanos() as f64 / bencher.iterations as f64;
    let mut line = format!(
        "bench {label:<56} {:>14}/iter ({} iters)",
        format_ns(mean_ns),
        bencher.iterations
    );
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 * 1e9 / mean_ns;
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>12.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>12.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Defines a benchmark group function from a config expression and targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", "0..100"), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        target(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2).warm_up_time(Duration::from_millis(1)).measurement_time(Duration::from_millis(2));
        targets = target
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
