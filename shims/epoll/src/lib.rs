//! Offline stand-in for epoll bindings.
//!
//! The workspace builds without registry access, so instead of `mio` or
//! `libc` this crate talks to the kernel directly: `epoll_create1`,
//! `epoll_ctl`, and `epoll_pwait` via inline-assembly syscalls, in the same
//! style as the `signal` shim. The surface is the minimal API the qld
//! readiness loop needs — a level-triggered [`Epoll`] instance plus a
//! [`raise_nofile_limit`] helper (`prlimit64`) so C10k-scale tests can claim
//! the file-descriptor headroom they need.
//!
//! On platforms without these syscalls (anything that is not Linux on
//! x86_64/aarch64) every constructor returns [`std::io::ErrorKind::Unsupported`],
//! which callers treat as "fall back to thread-per-session".

#![warn(missing_docs)]

use std::io;

/// Which readiness transitions a registered descriptor is watched for.
///
/// Hangup and error conditions (`EPOLLHUP`, `EPOLLERR`, `EPOLLRDHUP`) are
/// always reported and do not need to be requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the descriptor becomes readable (`EPOLLIN`).
    pub readable: bool,
    /// Wake when the descriptor becomes writable (`EPOLLOUT`).
    pub writable: bool,
}

impl Interest {
    /// Watch for readability only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Watch for writability only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Watch for both readability and writability.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report produced by [`Epoll::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable (`EPOLLIN`); after a peer hangup this
    /// stays set until the buffered bytes (and the EOF) have been read.
    pub readable: bool,
    /// The descriptor is writable (`EPOLLOUT`).
    pub writable: bool,
    /// The peer hung up (`EPOLLHUP` or `EPOLLRDHUP`): no more data will
    /// arrive beyond what is already buffered.
    pub hangup: bool,
    /// An error condition is pending on the descriptor (`EPOLLERR`).
    pub error: bool,
}

/// A level-triggered epoll instance.
///
/// Level-triggered is deliberate: the readiness loop re-arms nothing and can
/// stop mid-drain (e.g. when a session's write buffer fills) knowing the next
/// [`Epoll::wait`] will report the descriptor again.
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// Create a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        sys::epoll_create1().map(|fd| Epoll { fd })
    }

    /// Register `fd` under `token` with the given interest.
    pub fn add(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(self.fd, sys::CTL_ADD, fd, sys::mask(interest), token)
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(self.fd, sys::CTL_MOD, fd, sys::mask(interest), token)
    }

    /// Remove `fd` from the interest set.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        sys::epoll_ctl(self.fd, sys::CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness, appending up to an internal batch of events to
    /// `events` (which is cleared first). `timeout_ms` follows epoll
    /// semantics: `-1` blocks, `0` polls. A signal interrupting the wait is
    /// reported as zero events, not an error, so callers can treat every
    /// return as a normal (possibly spurious) wakeup.
    pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        events.clear();
        sys::epoll_wait(self.fd, events, timeout_ms)?;
        Ok(events.len())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = sys::close(self.fd);
    }
}

/// Raise this process's soft `RLIMIT_NOFILE` toward `target` (clamped to the
/// hard limit) and return the resulting soft limit. Needed by the C10k
/// torture suite: a thousand-connection soak holds two descriptors per
/// connection in one process, which overflows the common 1024 default.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    sys::raise_nofile_limit(target)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::{Event, Interest};
    use std::io;

    pub const CTL_ADD: i32 = 1;
    pub const CTL_DEL: i32 = 2;
    pub const CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: usize = 0x80000;

    const EINTR: i32 = 4;
    const RLIMIT_NOFILE: usize = 7;

    /// How many raw events one `epoll_wait` call can deliver. Readiness is
    /// level-triggered, so anything beyond the batch is simply reported by
    /// the next call.
    const WAIT_BATCH: usize = 256;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
        pub const PRLIMIT64: usize = 302;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
        pub const PRLIMIT64: usize = 261;
    }

    /// The kernel's `struct epoll_event`: packed to 12 bytes on x86_64,
    /// naturally aligned (16 bytes) everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct RawEvent {
        events: u32,
        data: u64,
    }

    pub fn mask(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub fn epoll_create1() -> io::Result<i32> {
        // SAFETY: epoll_create1 takes one integer flag and touches no memory.
        let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        check(ret).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let event = RawEvent {
            events,
            data: token,
        };
        // SAFETY: the event pointer is valid for the duration of the call and
        // matches the kernel's expected layout; DEL ignores it entirely.
        let ret = unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as usize,
                op as usize,
                fd as usize,
                &event as *const RawEvent as usize,
                0,
                0,
            )
        };
        check(ret).map(|_| ())
    }

    pub fn epoll_wait(epfd: i32, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        let mut raw = [RawEvent { events: 0, data: 0 }; WAIT_BATCH];
        // SAFETY: the buffer outlives the call and its length is passed
        // alongside it; epoll_pwait with a null sigmask still requires the
        // sigsetsize argument (8 on both supported targets).
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as usize,
                raw.as_mut_ptr() as usize,
                WAIT_BATCH,
                timeout_ms as usize,
                0,
                8,
            )
        };
        let count = match check(ret) {
            Ok(n) => n as usize,
            Err(err) if err.raw_os_error() == Some(EINTR) => 0,
            Err(err) => return Err(err),
        };
        for slot in raw.iter().take(count) {
            let copied = *slot;
            let bits = copied.events;
            out.push(Event {
                token: copied.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                error: bits & EPOLLERR != 0,
            });
        }
        Ok(())
    }

    pub fn close(fd: i32) -> io::Result<()> {
        // SAFETY: close takes one integer argument.
        let ret = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
        check(ret).map(|_| ())
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct RawLimit {
        cur: u64,
        max: u64,
    }

    pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
        let mut current = RawLimit { cur: 0, max: 0 };
        // SAFETY: pid 0 means "this process"; a null new-limit pointer makes
        // prlimit64 a pure read into the valid old-limit buffer.
        let ret = unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                0,
                &mut current as *mut RawLimit as usize,
                0,
                0,
            )
        };
        check(ret)?;
        let want = target.min(current.max);
        if want <= current.cur {
            return Ok(current.cur);
        }
        let new = RawLimit {
            cur: want,
            max: current.max,
        };
        // SAFETY: both limit pointers are valid; the hard limit is unchanged
        // so no privilege is required.
        let ret = unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &new as *const RawLimit as usize,
                0,
                0,
                0,
            )
        };
        check(ret)?;
        Ok(want)
    }

    /// Issue a raw six-argument system call.
    ///
    /// # Safety
    /// The caller must uphold the contract of the specific syscall: every
    /// pointer argument must be valid for the kernel's documented access.
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<isize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::{Event, Interest};
    use std::io;

    pub const CTL_ADD: i32 = 1;
    pub const CTL_DEL: i32 = 2;
    pub const CTL_MOD: i32 = 3;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll readiness polling is only wired up for Linux on x86_64/aarch64",
        )
    }

    pub fn mask(_interest: Interest) -> u32 {
        0
    }

    pub fn epoll_create1() -> io::Result<i32> {
        Err(unsupported())
    }

    pub fn epoll_ctl(_epfd: i32, _op: i32, _fd: i32, _events: u32, _token: u64) -> io::Result<()> {
        Err(unsupported())
    }

    pub fn epoll_wait(_epfd: i32, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<()> {
        Err(unsupported())
    }

    pub fn close(_fd: i32) -> io::Result<()> {
        Err(unsupported())
    }

    pub fn raise_nofile_limit(_target: u64) -> io::Result<u64> {
        Err(unsupported())
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn epoll_or_skip() -> Option<Epoll> {
        match Epoll::new() {
            Ok(ep) => Some(ep),
            Err(err) if err.kind() == io::ErrorKind::Unsupported => None,
            Err(err) => panic!("epoll_create1 failed: {err}"),
        }
    }

    fn events_for(ep: &Epoll, token: u64, timeout_ms: i32) -> Vec<Event> {
        let mut events = Vec::new();
        ep.wait(&mut events, timeout_ms).expect("epoll_wait");
        events.into_iter().filter(|ev| ev.token == token).collect()
    }

    #[test]
    fn fresh_socketpair_is_writable_but_not_readable() {
        let Some(ep) = epoll_or_skip() else { return };
        let (a, _b) = UnixStream::pair().expect("socketpair");
        ep.add(a.as_raw_fd(), 7, Interest::READ_WRITE).expect("add");
        let got = events_for(&ep, 7, 1000);
        assert_eq!(got.len(), 1, "expected one event, got {got:?}");
        assert!(got[0].writable);
        assert!(!got[0].readable);
        assert!(!got[0].hangup);
    }

    #[test]
    fn peer_write_flips_epollin() {
        let Some(ep) = epoll_or_skip() else { return };
        let (a, mut b) = UnixStream::pair().expect("socketpair");
        ep.add(a.as_raw_fd(), 1, Interest::READ).expect("add");
        assert!(
            events_for(&ep, 1, 0).is_empty(),
            "nothing to read yet, and EPOLLOUT was not requested"
        );
        b.write_all(b"ping\n").expect("write");
        let got = events_for(&ep, 1, 1000);
        assert_eq!(got.len(), 1);
        assert!(got[0].readable);
        // Level-triggered: the event repeats until the bytes are consumed.
        let again = events_for(&ep, 1, 1000);
        assert_eq!(again.len(), 1);
        assert!(again[0].readable);
        let mut buf = [0u8; 16];
        let n = (&a).read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping\n");
        assert!(events_for(&ep, 1, 0).is_empty());
    }

    #[test]
    fn peer_drop_reports_hangup() {
        let Some(ep) = epoll_or_skip() else { return };
        let (a, b) = UnixStream::pair().expect("socketpair");
        ep.add(a.as_raw_fd(), 3, Interest::READ).expect("add");
        drop(b);
        let got = events_for(&ep, 3, 1000);
        assert_eq!(got.len(), 1);
        assert!(got[0].hangup, "expected hangup after peer close: {got:?}");
    }

    #[test]
    fn modify_narrows_the_interest_set() {
        let Some(ep) = epoll_or_skip() else { return };
        let (a, _b) = UnixStream::pair().expect("socketpair");
        ep.add(a.as_raw_fd(), 9, Interest::READ_WRITE).expect("add");
        assert!(events_for(&ep, 9, 1000)[0].writable);
        ep.modify(a.as_raw_fd(), 9, Interest::READ).expect("modify");
        assert!(
            events_for(&ep, 9, 0).is_empty(),
            "after dropping EPOLLOUT an idle socket reports nothing"
        );
        ep.modify(a.as_raw_fd(), 9, Interest::READ_WRITE)
            .expect("modify back");
        assert!(events_for(&ep, 9, 1000)[0].writable);
    }

    #[test]
    fn delete_silences_a_descriptor() {
        let Some(ep) = epoll_or_skip() else { return };
        let (a, _b) = UnixStream::pair().expect("socketpair");
        ep.add(a.as_raw_fd(), 4, Interest::READ_WRITE).expect("add");
        assert_eq!(events_for(&ep, 4, 1000).len(), 1);
        ep.delete(a.as_raw_fd()).expect("delete");
        assert!(events_for(&ep, 4, 0).is_empty());
        // Re-adding after delete works (ADD, not MOD).
        ep.add(a.as_raw_fd(), 5, Interest::WRITE).expect("re-add");
        assert_eq!(events_for(&ep, 5, 1000).len(), 1);
    }

    #[test]
    fn two_registrations_report_distinct_tokens() {
        let Some(ep) = epoll_or_skip() else { return };
        let (a, mut b) = UnixStream::pair().expect("socketpair");
        let (c, mut d) = UnixStream::pair().expect("socketpair");
        ep.add(a.as_raw_fd(), 100, Interest::READ).expect("add a");
        ep.add(c.as_raw_fd(), 200, Interest::READ).expect("add c");
        b.write_all(b"x").expect("write b");
        d.write_all(b"y").expect("write d");
        let mut events = Vec::new();
        ep.wait(&mut events, 1000).expect("wait");
        let mut tokens: Vec<u64> = events.iter().map(|ev| ev.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![100, 200]);
    }

    #[test]
    fn nofile_limit_can_be_raised_or_is_already_high() {
        match raise_nofile_limit(4096) {
            Ok(soft) => assert!(soft >= 1, "soft limit should be positive, got {soft}"),
            Err(err) if err.kind() == io::ErrorKind::Unsupported => {}
            Err(err) => panic!("prlimit64 failed: {err}"),
        }
    }
}
