//! Offline stand-in for a thread-safe once cell (the build environment has no
//! access to crates.io, and `std::sync::OnceLock` is unavailable to `no_std`
//! solver crates).
//!
//! This is a minimal spin-style [`OnceCell`] in the same offline-shim spirit
//! as `shims/signal` and `shims/epoll`: exactly the surface the workspace
//! needs — lazy one-time initialization with [`OnceCell::get_or_init`], reset
//! by replacing the cell with [`OnceCell::new`] — and nothing more.  The
//! `qld-hypergraph` crate uses it to cache a lazily built query index that is
//! invalidated (cell replaced) on mutation, a contract `std::sync::OnceLock`
//! used to provide.
//!
//! Synchronization model: a single atomic state word (`EMPTY → BUSY → READY`)
//! guards an [`UnsafeCell`] slot.  Writers race through a compare-exchange on
//! `EMPTY`; the winner runs the initializer and publishes with a `Release`
//! store, losers spin (with a platform pause hint) until the `READY` state is
//! visible and then read the slot.  On targets without atomic spin progress
//! guarantees this is still correct — merely slower under contention — and on
//! the single-threaded `wasm32-unknown-unknown` target the busy state is
//! unobservable, so no deadlock is possible there: the one thread that set
//! `BUSY` is the one running the initializer.
//!
//! The cell is deliberately *not* poison-aware: if an initializer panics, the
//! state word stays `BUSY` forever and other threads spin.  The workspace's
//! initializers are pure index builds that do not panic on valid inputs, and
//! the simplicity keeps the unsafe surface auditable.

#![cfg_attr(not(test), no_std)]
#![warn(missing_docs)]

use core::cell::UnsafeCell;
use core::fmt;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicU8, Ordering};

const EMPTY: u8 = 0;
const BUSY: u8 = 1;
const READY: u8 = 2;

/// A thread-safe cell that can be written to at most once, usable from
/// `no_std` code (the stand-in for `std::sync::OnceLock`).
pub struct OnceCell<T> {
    state: AtomicU8,
    slot: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: the state machine guarantees the slot is written exactly once
// (by the thread that wins the EMPTY→BUSY compare-exchange) before any
// reader observes READY via an Acquire load, so shared references handed
// out by `get`/`get_or_init` always point at fully initialized, immutable
// data.  `T: Send` is required because the value may be dropped on a
// different thread than the one that created it.
unsafe impl<T: Send + Sync> Sync for OnceCell<T> {}
unsafe impl<T: Send> Send for OnceCell<T> {}

impl<T> OnceCell<T> {
    /// Creates an empty cell.
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Self {
        OnceCell {
            state: AtomicU8::new(EMPTY),
            slot: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// The stored value, if the cell has been initialized.
    pub fn get(&self) -> Option<&T> {
        if self.state.load(Ordering::Acquire) == READY {
            // SAFETY: READY is only published (Release) after the slot was
            // fully written, and the slot is never written again.
            Some(unsafe { (*self.slot.get()).assume_init_ref() })
        } else {
            None
        }
    }

    /// Returns the stored value, running `init` to create it if the cell is
    /// still empty.  Exactly one caller's `init` runs; concurrent callers
    /// spin until the winner publishes and then share the same value.
    pub fn get_or_init<F: FnOnce() -> T>(&self, init: F) -> &T {
        if let Some(v) = self.get() {
            return v;
        }
        match self
            .state
            .compare_exchange(EMPTY, BUSY, Ordering::Acquire, Ordering::Acquire)
        {
            Ok(_) => {
                // This thread owns initialization.
                let value = init();
                // SAFETY: state is BUSY, so no other thread reads or writes
                // the slot until READY is published below.
                unsafe { (*self.slot.get()).write(value) };
                self.state.store(READY, Ordering::Release);
                // SAFETY: just initialized above.
                unsafe { (*self.slot.get()).assume_init_ref() }
            }
            Err(_) => {
                // Another thread is initializing (or already did); wait for
                // the READY publication.
                loop {
                    if self.state.load(Ordering::Acquire) == READY {
                        // SAFETY: READY implies a completed write (see `get`).
                        return unsafe { (*self.slot.get()).assume_init_ref() };
                    }
                    core::hint::spin_loop();
                }
            }
        }
    }
}

impl<T> Drop for OnceCell<T> {
    fn drop(&mut self) {
        if *self.state.get_mut() == READY {
            // SAFETY: READY implies the slot holds an initialized value, and
            // `&mut self` means no other reference to it can exist.
            unsafe { self.slot.get_mut().assume_init_drop() };
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OnceCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.get() {
            Some(v) => f.debug_tuple("OnceCell").field(v).finish(),
            None => f.write_str("OnceCell(<empty>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::OnceCell;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn starts_empty_and_initializes_once() {
        let cell: OnceCell<u64> = OnceCell::new();
        assert!(cell.get().is_none());
        assert_eq!(*cell.get_or_init(|| 41 + 1), 42);
        // A second initializer never runs.
        assert_eq!(*cell.get_or_init(|| unreachable!()), 42);
        assert_eq!(cell.get(), Some(&42));
    }

    #[test]
    fn replacing_the_cell_resets_it() {
        let mut cell: OnceCell<u64> = OnceCell::new();
        cell.get_or_init(|| 1);
        cell = OnceCell::new();
        assert!(cell.get().is_none());
        assert_eq!(*cell.get_or_init(|| 2), 2);
    }

    #[test]
    fn drops_the_value_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let cell: OnceCell<Probe> = OnceCell::new();
            cell.get_or_init(|| Probe);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        // An empty cell drops nothing.
        {
            let _cell: OnceCell<Probe> = OnceCell::new();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_initialization_yields_one_value() {
        for _ in 0..64 {
            let cell = Arc::new(OnceCell::<usize>::new());
            let runs = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let cell = Arc::clone(&cell);
                    let runs = Arc::clone(&runs);
                    std::thread::spawn(move || {
                        *cell.get_or_init(|| {
                            runs.fetch_add(1, Ordering::SeqCst);
                            i
                        })
                    })
                })
                .collect();
            let values: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(runs.load(Ordering::SeqCst), 1, "one initializer ran");
            assert!(values.windows(2).all(|w| w[0] == w[1]), "all saw one value");
        }
    }
}
