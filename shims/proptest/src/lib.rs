//! Offline stand-in for the subset of `proptest` used by this workspace (the
//! build environment has no access to crates.io).
//!
//! Provided: the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, a [`strategy::Strategy`]
//! trait with `prop_map`, integer-range strategies, and
//! `prop::collection::vec`.  Cases are generated from a deterministic per-test
//! stream (seeded by the test's module path and name), so failures are
//! reproducible; there is no shrinking.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration, the per-test RNG, and the case-level error type.

    /// Subset of proptest's run configuration: the number of accepted cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it does not count.
        Reject,
        /// A `prop_assert*!` failed with the given message.
        Fail(String),
    }

    /// Deterministic SplitMix64 stream used to generate case inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream keyed by a tag (the test's module path and name), so each
        /// test sees its own reproducible sequence.
        pub fn deterministic(tag: &str) -> Self {
            // FNV-1a over the tag bytes.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// A strategy producing a single fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// Generates vectors of `element` values with lengths drawn from `size`
    /// (any strategy over `usize`, e.g. `0..=n`).
    pub fn vec<S: Strategy, L: Strategy<Value = usize>>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: Strategy<Value = usize>> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of the real crate layout (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed at {}:{}: {}", file!(), line!(), stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed at {}:{}: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...) { body }`
/// item expands to a zero-argument test that checks the body against
/// `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(1024);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        continue
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed on case {} (attempt {}):\n{}",
                            stringify!($name),
                            accepted + 1,
                            attempts,
                            msg
                        )
                    }
                }
            }
            // Like real proptest's "too many global rejects": a property whose
            // assumptions filter out (almost) every case must not pass
            // vacuously.
            assert!(
                accepted >= config.cases,
                "proptest `{}`: too many rejected cases ({} accepted of {} wanted after {} attempts) — loosen prop_assume! or the strategies",
                stringify!($name),
                accepted,
                config.cases,
                attempts
            );
        }
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and multiple args parse; ranges stay in bounds.
        #[test]
        fn ranges_and_vecs(x in 3..10usize, v in prop::collection::vec(0..5u32, 1..=4usize)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() <= 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn map_and_assume(n in (0..100usize).prop_map(|k| k * 2)) {
            prop_assume!(n > 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn rejection_does_not_count_as_a_case() {
        // `map_and_assume` above would spin forever if rejects counted; its
        // successful completion is the actual assertion.  Here we just pin the
        // deterministic stream: same tag, same sequence.
        let mut a = crate::test_runner::TestRng::deterministic("tag");
        let mut b = crate::test_runner::TestRng::deterministic("tag");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
