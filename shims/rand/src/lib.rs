//! Offline stand-in for the tiny subset of the `rand` crate used by this
//! workspace (the build environment has no access to crates.io).
//!
//! Only what the instance generators need is provided: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges, and
//! [`Rng::gen_bool`].  The generator is a SplitMix64 stream, so every sequence
//! is deterministic in the seed and stable across runs and platforms — which is
//! all the workloads and tests rely on.

#![cfg_attr(not(test), no_std)]
#![forbid(unsafe_code)]

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Generic over the output type `T` (like the real crate) so that integer
    /// literals in ranges infer their type from the use site.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits in [0, 1); `< p` is never true for p = 0.0
        // and always true for p = 1.0.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly, producing values of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: a SplitMix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2..=4u32);
            assert!((2..=4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
