//! Offline stand-in for `serde` (the build environment has no access to
//! crates.io).  The workspace only uses serde as a *marker*: types derive
//! `Serialize`/`Deserialize` so that downstream consumers could serialize them,
//! and one test asserts the bounds hold.  The shim therefore provides the two
//! traits with blanket implementations and re-exports no-op derive macros; no
//! actual serialization framework is included.

#![cfg_attr(not(test), no_std)]
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Probe {
        _x: u32,
    }

    fn assert_bounds<T: super::Serialize + for<'a> super::Deserialize<'a>>() {}

    #[test]
    fn derives_and_blanket_impls_resolve() {
        assert_bounds::<Probe>();
        assert_bounds::<Vec<String>>();
    }
}
