//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline serde shim.  The shim's traits carry blanket implementations, so the
//! derives only need to exist for `#[derive(serde::Serialize, ...)]` attributes
//! to resolve; they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the shim's `Serialize` has a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the shim's `Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
