//! Offline stand-in for process signal handling (the build environment has no
//! access to crates.io, and `std` exposes no way to install a handler).
//!
//! This is a minimal, `libc`-crate-free `sigaction`-style wrapper over raw
//! Linux syscalls (`rt_sigaction`, `kill`, `getpid`), in the same offline-shim
//! spirit as the `rand`/`serde` stand-ins: exactly the surface this workspace
//! needs, nothing more.  The model is deliberately tiny and async-signal-safe:
//!
//! * [`install`] registers a process-wide handler for one [`Signal`] whose
//!   only action is bumping a per-signal atomic delivery counter;
//! * the returned [`SignalFlag`] is a cheap, cloneable view of that counter
//!   ([`SignalFlag::is_raised`], [`SignalFlag::deliveries`]) that ordinary
//!   threads poll at their leisure;
//! * [`raise`] sends a signal to the current process (used by tests and by
//!   smoke scripts that cannot spell `kill -TERM $$` portably).
//!
//! Nothing with observable side effects runs in signal context — no locks, no
//! allocation, no I/O — so a handler can never deadlock or corrupt the
//! process it interrupts.  Consumers (the `qld serve` daemon) watch the flag
//! from a normal thread and perform the actual shutdown there.
//!
//! Handlers are installed with `SA_RESTART`, so interrupted blocking syscalls
//! in unrelated threads are transparently restarted; waking a blocked accept
//! loop is the watcher's job (the engine's shutdown handles already poke their
//! listener with a throwaway connection).
//!
//! Supported targets are Linux on x86_64 and aarch64 (the only platforms this
//! workspace builds for); elsewhere [`install`] and [`raise`] return
//! [`std::io::ErrorKind::Unsupported`] so callers can degrade gracefully.

#![warn(missing_docs)]

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// The signals this shim knows how to install handlers for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// `SIGINT` (2) — interactive interrupt (Ctrl-C).
    Interrupt,
    /// `SIGTERM` (15) — polite termination request (`kill`'s default).
    Terminate,
    /// `SIGUSR1` (10) — user-defined; used by tests so they never install
    /// handlers for signals the test harness itself may receive.
    User1,
    /// `SIGUSR2` (12) — user-defined.
    User2,
}

impl Signal {
    /// The signal's number on the supported platforms.
    pub fn number(self) -> i32 {
        match self {
            Signal::Interrupt => 2,
            Signal::Terminate => 15,
            Signal::User1 => 10,
            Signal::User2 => 12,
        }
    }

    /// The conventional name (`"SIGINT"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Signal::Interrupt => "SIGINT",
            Signal::Terminate => "SIGTERM",
            Signal::User1 => "SIGUSR1",
            Signal::User2 => "SIGUSR2",
        }
    }
}

/// Per-signal delivery counters, indexed by signal number.  The handler bumps
/// these and does nothing else; `AtomicU64` operations are lock-free on the
/// supported targets, hence async-signal-safe.
static DELIVERIES: [AtomicU64; MAX_SIGNAL] = [const { AtomicU64::new(0) }; MAX_SIGNAL];
const MAX_SIGNAL: usize = 32;

/// A cheap view of one installed signal's delivery counter, returned by
/// [`install`].  The flag carries the counter value observed at install time
/// as its baseline, so each install starts counting from zero even though the
/// process-wide counter is monotonic — re-arming a signal in a long-lived
/// process never observes deliveries from a previous arming.  Cloning shares
/// the baseline; the handler stays installed for the life of the process
/// (there is no uninstall — daemons do not change their minds about wanting
/// shutdown signals).
#[derive(Debug, Clone)]
pub struct SignalFlag {
    signal: Signal,
    /// Process-wide delivery count at [`install`] time.
    baseline: u64,
}

impl SignalFlag {
    /// The signal this flag watches.
    pub fn signal(&self) -> Signal {
        self.signal
    }

    /// Whether the signal has been delivered at least once since this flag's
    /// [`install`].
    pub fn is_raised(&self) -> bool {
        self.deliveries() > 0
    }

    /// How many times the signal has been delivered since this flag's
    /// [`install`].
    pub fn deliveries(&self) -> u64 {
        DELIVERIES[self.signal.number() as usize]
            .load(Ordering::SeqCst)
            .saturating_sub(self.baseline)
    }
}

/// The handler: bump the delivery counter for `signum`.  Runs in signal
/// context, so it must stay async-signal-safe (no locks, allocation, or I/O).
extern "C" fn record_delivery(signum: i32) {
    if let Ok(index) = usize::try_from(signum) {
        if index < MAX_SIGNAL {
            DELIVERIES[index].fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Installs the process-wide counting handler for `signal` and returns a
/// [`SignalFlag`] watching its delivery counter from now on.
///
/// Installing the same signal twice is harmless (the second install re-points
/// the disposition at the same handler), and each returned flag counts only
/// deliveries after its own install.  On platforms without the raw-syscall
/// backend this returns [`std::io::ErrorKind::Unsupported`].
pub fn install(signal: Signal) -> io::Result<SignalFlag> {
    sys::sigaction_record(signal.number())?;
    let baseline = DELIVERIES[signal.number() as usize].load(Ordering::SeqCst);
    Ok(SignalFlag { signal, baseline })
}

/// Sends `signal` to the current process (`kill(getpid(), signum)`).
pub fn raise(signal: Signal) -> io::Result<()> {
    sys::raise(signal.number())
}

/// Sends `signal` to the process `pid` (`kill(pid, signum)`).  Used by the
/// fleet supervisor to terminate shard children it spawned; like [`raise`],
/// returns [`std::io::ErrorKind::Unsupported`] on platforms without the
/// raw-syscall backend.
pub fn kill(pid: i32, signal: Signal) -> io::Result<()> {
    sys::kill(pid, signal.number())
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! The raw-syscall backend: `rt_sigaction`/`kill`/`getpid` invoked through
    //! inline assembly, no `libc` crate involved.  The kernel-facing
    //! `sigaction` struct (handler, flags, restorer, 64-bit mask) is laid out
    //! by hand; on x86_64 the kernel requires a caller-supplied `SA_RESTORER`
    //! trampoline that invokes `rt_sigreturn`, which lives in `global_asm!`
    //! below, while aarch64 falls back to the kernel/vDSO return path.

    use std::io;

    /// The kernel's `sigaction` layout on x86_64 and aarch64 (not glibc's:
    /// the kernel mask is a plain 64-bit word, `sigsetsize` 8).
    #[repr(C)]
    struct KernelSigaction {
        handler: usize,
        flags: u64,
        restorer: usize,
        mask: u64,
    }

    const SA_RESTORER: u64 = 0x0400_0000;
    const SA_RESTART: u64 = 0x1000_0000;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const RT_SIGACTION: usize = 13;
        pub const GETPID: usize = 39;
        pub const KILL: usize = 62;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const RT_SIGACTION: usize = 134;
        pub const GETPID: usize = 172;
        pub const KILL: usize = 129;
    }

    // x86_64 delivers signals with no default return path: the kernel jumps
    // to `sa_restorer` when the handler returns, so a raw `rt_sigaction` must
    // supply its own trampoline that performs the `rt_sigreturn` syscall (15).
    #[cfg(target_arch = "x86_64")]
    core::arch::global_asm!(
        ".text",
        ".balign 16",
        ".hidden qld_signal_restorer",
        ".globl qld_signal_restorer",
        "qld_signal_restorer:",
        "mov rax, 15",
        "syscall",
    );

    #[cfg(target_arch = "x86_64")]
    extern "C" {
        fn qld_signal_restorer();
    }

    /// `syscall(n, a1, a2, a3, a4)`, returning the raw kernel result
    /// (negative errno on failure).
    unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<isize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    /// Points `signum`'s disposition at [`super::record_delivery`].
    pub(super) fn sigaction_record(signum: i32) -> io::Result<()> {
        #[cfg(target_arch = "x86_64")]
        let (flags, restorer) = (
            SA_RESTART | SA_RESTORER,
            qld_signal_restorer as unsafe extern "C" fn() as usize,
        );
        #[cfg(target_arch = "aarch64")]
        let (flags, restorer) = (SA_RESTART, 0usize);
        let action = KernelSigaction {
            handler: super::record_delivery as extern "C" fn(i32) as usize,
            flags,
            restorer,
            mask: 0,
        };
        // `rt_sigaction(signum, &act, NULL, sizeof(kernel sigset_t) = 8)`.
        let ret = unsafe {
            syscall4(
                nr::RT_SIGACTION,
                signum as usize,
                std::ptr::from_ref(&action) as usize,
                0,
                8,
            )
        };
        check(ret).map(|_| ())
    }

    /// `kill(getpid(), signum)`.
    pub(super) fn raise(signum: i32) -> io::Result<()> {
        let pid = unsafe { syscall4(nr::GETPID, 0, 0, 0, 0) };
        let pid = check(pid)?;
        kill(pid as i32, signum)
    }

    /// `kill(pid, signum)`.
    pub(super) fn kill(pid: i32, signum: i32) -> io::Result<()> {
        let ret = unsafe { syscall4(nr::KILL, pid as usize, signum as usize, 0, 0) };
        check(ret).map(|_| ())
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    //! Fallback for platforms without the raw-syscall backend: report
    //! `Unsupported` so callers can run without signal-driven shutdown.

    use std::io;

    pub(super) fn sigaction_record(_signum: i32) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "signal handling is only implemented for Linux x86_64/aarch64",
        ))
    }

    pub(super) fn raise(_signum: i32) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "signal handling is only implemented for Linux x86_64/aarch64",
        ))
    }

    pub(super) fn kill(_pid: i32, _signum: i32) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "signal handling is only implemented for Linux x86_64/aarch64",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    /// Spin until `flag` reports at least `n` deliveries (signal delivery to
    /// the raising process is asynchronous in principle, though usually
    /// synchronous for `kill` to self).
    fn wait_for_deliveries(flag: &SignalFlag, n: u64) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while flag.deliveries() < n {
            assert!(
                Instant::now() < deadline,
                "signal was never delivered ({} of {n})",
                flag.deliveries()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn raised_signals_are_counted() {
        let flag = install(Signal::User1).expect("install SIGUSR1");
        assert_eq!(flag.signal(), Signal::User1);
        let before = flag.deliveries();
        raise(Signal::User1).expect("raise SIGUSR1");
        wait_for_deliveries(&flag, before + 1);
        assert!(flag.is_raised());
        // A second delivery increments, not toggles.
        raise(Signal::User1).expect("raise SIGUSR1 again");
        wait_for_deliveries(&flag, before + 2);
    }

    #[test]
    fn reinstalling_starts_a_fresh_count() {
        let a = install(Signal::User2).expect("install SIGUSR2");
        let b = install(Signal::User2).expect("re-install SIGUSR2");
        let before = a.deliveries();
        raise(Signal::User2).expect("raise SIGUSR2");
        wait_for_deliveries(&a, before + 1);
        // Both flags were armed before the delivery, so both observed it.
        assert_eq!(a.deliveries(), b.deliveries());
        // A flag armed *after* the delivery must not see it: a re-armed
        // daemon (second server in one process) would otherwise shut down
        // instantly on the previous lifetime's signal.
        let c = install(Signal::User2).expect("re-install SIGUSR2 again");
        assert_eq!(c.deliveries(), 0);
        assert!(!c.is_raised());
        assert!(a.is_raised());
    }

    #[test]
    fn kill_by_pid_reaches_the_target_process() {
        let flag = install(Signal::User1).expect("install SIGUSR1");
        let before = flag.deliveries();
        kill(std::process::id() as i32, Signal::User1).expect("kill(self, SIGUSR1)");
        wait_for_deliveries(&flag, before + 1);
    }

    #[test]
    fn numbers_and_names_are_stable() {
        assert_eq!(Signal::Interrupt.number(), 2);
        assert_eq!(Signal::Terminate.number(), 15);
        assert_eq!(Signal::Interrupt.name(), "SIGINT");
        assert_eq!(Signal::Terminate.name(), "SIGTERM");
    }
}
