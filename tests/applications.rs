//! Cross-crate integration: the three database applications of `DUAL`
//! (Propositions 1.1–1.3) agree with their brute-force baselines, for several duality
//! solvers.

use qld_core::{BorosMakinoTreeSolver, DualitySolver, QuadLogspaceSolver};
use qld_datamining::{
    apriori, borders_exact, dualize_and_advance_with, identify_with, Identification,
    IdentificationInstance, NewBorderElement,
};
use qld_fk::FkASolver;
use qld_hypergraph::transversal::{is_self_dual_exact, minimal_transversals};
use qld_keys::{enumerate_minimal_keys_with, minimal_keys_brute, AdditionalKey};

fn solvers() -> Vec<Box<dyn DualitySolver>> {
    vec![
        Box::new(QuadLogspaceSolver::default()),
        Box::new(BorosMakinoTreeSolver::new()),
        Box::new(FkASolver::new()),
    ]
}

#[test]
fn itemset_borders_match_ground_truth_for_every_solver() {
    for seed in 0..3 {
        let relation = qld_datamining::generators::random_relation(6, 18, 0.55, seed);
        for z in [2, 5] {
            let exact = borders_exact(&relation, z);
            let level_wise = apriori(&relation, z).maximal_frequent(relation.num_items());
            assert!(exact.maximal_frequent.same_edge_set(&level_wise));
            for solver in solvers() {
                let result = dualize_and_advance_with(&relation, z, solver.as_ref()).unwrap();
                assert!(
                    result
                        .maximal_frequent
                        .same_edge_set(&exact.maximal_frequent),
                    "{} IS+ mismatch (seed {seed}, z {z})",
                    solver.name()
                );
                assert!(
                    result
                        .minimal_infrequent
                        .same_edge_set(&exact.minimal_infrequent),
                    "{} IS- mismatch (seed {seed}, z {z})",
                    solver.name()
                );
            }
        }
    }
}

#[test]
fn identification_discovers_each_hidden_border_element() {
    let relation = qld_datamining::generators::planted_pattern_relation(8, 30, 3, 4, 0.1, 5);
    let z = 6;
    let exact = borders_exact(&relation, z);
    // Hide each maximal frequent itemset in turn; identification must report
    // incompleteness with a valid new element.
    for drop in 0..exact.maximal_frequent.num_edges() {
        let mut partial = exact.maximal_frequent.clone();
        partial.remove_edge(drop);
        let inst = IdentificationInstance::new(&relation, z, &exact.minimal_infrequent, &partial);
        match identify_with(&inst, &QuadLogspaceSolver::default()).unwrap() {
            Identification::Incomplete(NewBorderElement::MaximalFrequent(s)) => {
                assert!(relation.is_maximal_frequent(&s, z));
                assert!(!partial.contains_edge(&s));
            }
            Identification::Incomplete(NewBorderElement::MinimalInfrequent(s)) => {
                assert!(relation.is_minimal_infrequent(&s, z));
                assert!(!exact.minimal_infrequent.contains_edge(&s));
            }
            other => panic!("hidden element not discovered: {other:?}"),
        }
    }
    // With the full borders the identification is complete.
    let inst = IdentificationInstance::new(
        &relation,
        z,
        &exact.minimal_infrequent,
        &exact.maximal_frequent,
    );
    assert_eq!(
        identify_with(&inst, &QuadLogspaceSolver::default()).unwrap(),
        Identification::Complete
    );
}

#[test]
fn minimal_key_enumeration_matches_brute_force_for_every_solver() {
    for seed in 0..3 {
        let table = qld_keys::generators::random_instance(5, 9, 2, seed);
        let brute = minimal_keys_brute(&table);
        for solver in solvers() {
            let (keys, calls) = enumerate_minimal_keys_with(&table, solver.as_ref()).unwrap();
            assert!(
                keys.same_edge_set(&brute),
                "{} key mismatch (seed {seed})",
                solver.name()
            );
            assert_eq!(calls, keys.num_edges() + 1);
        }
        // decision form: dropping any key is detected
        if brute.num_edges() >= 1 {
            let mut partial = brute.clone();
            partial.remove_edge(0);
            assert!(matches!(
                qld_keys::additional_key(&table, &partial).unwrap(),
                AdditionalKey::Found(_)
            ));
            assert_eq!(
                qld_keys::additional_key(&table, &brute).unwrap(),
                AdditionalKey::Complete
            );
        }
    }
}

#[test]
fn keys_are_minimal_transversals_of_the_disagreement_hypergraph() {
    let table = qld_keys::generators::planted_key_instance(6, 12, &[1, 4], 3);
    let d = qld_keys::disagreement_hypergraph(&table);
    let keys = qld_keys::minimal_keys_exact(&table);
    assert!(keys.same_edge_set(&minimal_transversals(&d)));
    for k in keys.edges() {
        assert!(table.is_minimal_key(k));
    }
}

#[test]
fn coterie_domination_agrees_with_exact_self_duality_for_every_solver() {
    use qld_coteries::constructions::*;
    let coteries = vec![
        majority_coterie(3),
        majority_coterie(5),
        threshold_coterie(4, 3),
        threshold_coterie(6, 4),
        wheel_coterie(6),
        grid_coterie(2, 3),
        singleton_coterie(3, 1),
    ];
    for coterie in &coteries {
        let expected = is_self_dual_exact(coterie.quorums());
        for solver in solvers() {
            let verdict = qld_coteries::check_domination_with(coterie, solver.as_ref()).unwrap();
            assert_eq!(
                verdict.is_non_dominated(),
                expected,
                "{} on {coterie}",
                solver.name()
            );
            if let qld_coteries::Domination::DominatedBy(d) = verdict {
                assert!(qld_coteries::dominates(&d, coterie), "{coterie}");
            }
        }
    }
}
