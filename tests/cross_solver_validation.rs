//! Cross-crate integration: every duality solver in the repository — the two
//! decomposition solvers from `qld-core` and the three classical baselines from
//! `qld-fk` — must agree with exact ground truth on every instance family, and every
//! negative verdict must carry an independently checkable witness.

use qld_core::{
    verify_witness, BorosMakinoTreeSolver, DualityResult, DualitySolver, QuadLogspaceSolver,
    SpaceStrategy,
};
use qld_fk::{AssignmentBruteSolver, BergeSolver, FkASolver};
use qld_hypergraph::generators;
use qld_hypergraph::transversal::{are_dual_exact, minimal_transversals};

fn all_solvers() -> Vec<Box<dyn DualitySolver>> {
    vec![
        Box::new(BorosMakinoTreeSolver::new()),
        Box::new(QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain)),
        Box::new(BergeSolver::new()),
        Box::new(FkASolver::new()),
    ]
}

#[test]
fn all_solvers_agree_on_the_standard_corpus() {
    for li in generators::standard_corpus() {
        for solver in all_solvers() {
            let verdict = solver.decide(&li.g, &li.h).unwrap();
            assert_eq!(
                verdict.is_dual(),
                li.dual,
                "{} disagrees with the label of {}",
                solver.name(),
                li.name
            );
            if let DualityResult::NotDual(w) = &verdict {
                assert!(
                    verify_witness(&li.g, &li.h, w),
                    "{} produced an invalid witness on {}: {w}",
                    solver.name(),
                    li.name
                );
            }
        }
    }
}

#[test]
fn all_solvers_agree_on_random_instances_with_exact_reference() {
    for seed in 0..10 {
        let g = generators::random_simple_hypergraph(7, 6, 2..=4, seed);
        if g.is_empty() {
            continue;
        }
        let h = minimal_transversals(&g);
        // exact duals
        for solver in all_solvers() {
            assert!(
                solver.is_dual(&g, &h).unwrap(),
                "{} rejected an exact dual (seed {seed})",
                solver.name()
            );
        }
        // perturbed (non-dual) variants
        if h.num_edges() >= 2 {
            let mut broken = h.clone();
            broken.remove_edge(seed as usize % broken.num_edges());
            let expected = are_dual_exact(&broken, &g);
            assert!(!expected);
            for solver in all_solvers() {
                let verdict = solver.decide(&g, &broken).unwrap();
                assert!(!verdict.is_dual(), "{} (seed {seed})", solver.name());
                assert!(verify_witness(&g, &broken, verdict.witness().unwrap()));
            }
        }
    }
}

#[test]
fn recompute_strategy_and_brute_force_agree_on_small_instances() {
    let recompute = QuadLogspaceSolver::new(SpaceStrategy::Recompute);
    let brute = AssignmentBruteSolver::new();
    let cases = vec![
        generators::matching_instance(1),
        generators::matching_instance(2),
        generators::matching_instance(3),
        generators::threshold_instance(4, 2),
        generators::threshold_instance(5, 3),
        generators::self_dual_instance(1),
        generators::graph_cover_instance("C5", generators::cycle_graph(5)),
    ];
    for li in &cases {
        assert_eq!(
            recompute.is_dual(&li.g, &li.h).unwrap(),
            brute.is_dual(&li.g, &li.h).unwrap(),
            "{}",
            li.name
        );
    }
    // and on their perturbations
    for (i, li) in cases.iter().enumerate() {
        if let Some(broken) = generators::perturb(li, generators::Perturbation::DropDualEdge, i) {
            assert_eq!(
                recompute.is_dual(&broken.g, &broken.h).unwrap(),
                brute.is_dual(&broken.g, &broken.h).unwrap(),
                "{}",
                broken.name
            );
        }
    }
}

#[test]
fn dnf_level_duality_matches_hypergraph_level_duality() {
    use qld_hypergraph::MonotoneDnf;
    for li in [
        generators::matching_instance(2),
        generators::matching_instance(3),
        generators::threshold_instance(5, 2),
    ] {
        let f = MonotoneDnf::from_hypergraph(&li.g);
        let g = MonotoneDnf::from_hypergraph(&li.h);
        assert!(f.is_dual_semantic(&g), "{}", li.name);
        assert!(QuadLogspaceSolver::default().is_dual(&li.g, &li.h).unwrap());
        // perturbation breaks both views
        if let Some(broken) = generators::perturb(&li, generators::Perturbation::DropDualEdge, 0) {
            let gb = MonotoneDnf::from_hypergraph(&broken.h);
            assert!(!f.is_dual_semantic(&gb));
            assert!(!QuadLogspaceSolver::default()
                .is_dual(&broken.g, &broken.h)
                .unwrap());
        }
    }
}
