//! Cross-crate integration: structural properties of the Boros–Makino decomposition
//! (Proposition 2.1), equivalence of the space-efficient `pathnode`/`decompose`
//! algorithms with the explicit tree (Lemmas 4.1–4.2, Theorem 4.1), and the
//! guess-and-check certificates (Theorem 5.1).

use qld_core::guess_check::{find_certificate, verify_certificate, CertificateCheck};
use qld_core::instance::DualInstance;
use qld_core::path::{max_branching, max_descriptor_length};
use qld_core::pathnode::{pathnode, PathnodeOutcome};
use qld_core::tree::{build_tree, BuildOptions};
use qld_core::{Mark, QuadLogspaceSolver, SpaceStrategy};
use qld_hypergraph::generators;
use qld_logspace::SpaceMeter;

fn oriented(li: &generators::LabelledInstance) -> DualInstance {
    DualInstance::new(li.g.clone(), li.h.clone())
        .unwrap()
        .oriented()
        .0
}

#[test]
fn proposition_2_1_bounds_hold_across_families() {
    for li in generators::standard_corpus() {
        if !li.dual {
            continue; // shape bounds are stated for instances satisfying the preconditions
        }
        let inst = oriented(&li);
        let tree = build_tree(&inst, &BuildOptions::default()).unwrap();
        let stats = tree.stats();
        assert!(
            stats.depth <= max_descriptor_length(inst.h().num_edges()),
            "{}: depth {} > ⌊log₂ {}⌋",
            li.name,
            stats.depth,
            inst.h().num_edges()
        );
        assert!(
            stats.max_branching <= inst.num_vertices() * inst.g().num_edges() + 1,
            "{}: branching bound violated",
            li.name
        );
        // Proposition 2.1(1): dual instances have all leaves done.
        assert!(tree.all_leaves_done(), "{}", li.name);
    }
}

#[test]
fn fail_leaves_of_non_dual_instances_carry_valid_new_transversals() {
    for li in generators::standard_corpus() {
        if li.dual {
            continue;
        }
        let inst = oriented(&li);
        // The tree is well-defined regardless of the preconditions; every fail witness
        // must be a genuine new transversal (our strengthening of Prop. 2.1(4)).
        let tree = build_tree(&inst, &BuildOptions::default()).unwrap();
        for leaf in tree.leaves() {
            if leaf.attr.mark == Mark::Fail {
                let w = leaf.attr.witness.as_ref().unwrap();
                assert!(
                    inst.g().is_new_transversal(inst.h(), w),
                    "{}: invalid witness at {}",
                    li.name,
                    leaf.attr.label
                );
            }
        }
    }
}

#[test]
fn pathnode_reproduces_every_tree_node_on_representative_instances() {
    let meter = SpaceMeter::new();
    for li in [
        generators::matching_instance(3),
        generators::threshold_instance(6, 3),
        generators::self_dual_instance(2),
        generators::graph_cover_instance("C7", generators::cycle_graph(7)),
    ] {
        let inst = oriented(&li);
        let tree = build_tree(&inst, &BuildOptions::default()).unwrap();
        for node in tree.nodes() {
            match pathnode(
                &inst,
                &node.attr.label,
                SpaceStrategy::MaterializeChain,
                &meter,
            ) {
                PathnodeOutcome::Node(attr) => assert_eq!(&attr, &node.attr, "{}", li.name),
                PathnodeOutcome::WrongPath => {
                    panic!("{}: pathnode lost node {}", li.name, node.attr.label)
                }
            }
        }
        // a descriptor beyond the branching bound is always a wrong path
        let too_big = max_branching(inst.num_vertices(), inst.g().num_edges()) + 1;
        assert_eq!(
            pathnode(
                &inst,
                &qld_core::PathDescriptor::from_indices([too_big]),
                SpaceStrategy::MaterializeChain,
                &meter
            ),
            PathnodeOutcome::WrongPath
        );
    }
}

#[test]
fn decompose_enumeration_matches_explicit_tree() {
    let meter = SpaceMeter::new();
    for li in [
        generators::matching_instance(2),
        generators::self_dual_instance(1),
        generators::threshold_instance(4, 2),
    ] {
        let inst = DualInstance::new(li.g.clone(), li.h.clone()).unwrap();
        let out = qld_core::decompose::decompose(
            &inst,
            SpaceStrategy::MaterializeChain,
            &meter,
            50_000_000,
        )
        .unwrap();
        let (oriented, _) = inst.oriented();
        let tree = build_tree(&oriented, &BuildOptions::default()).unwrap();
        assert_eq!(out.node_count(), tree.len(), "{}", li.name);
        assert_eq!(out.edges.len(), tree.len() - 1, "{}", li.name);
        let pruned =
            qld_core::decompose::decompose_pruned(&inst, SpaceStrategy::MaterializeChain, &meter);
        assert_eq!(pruned.node_count(), tree.len(), "{}", li.name);
    }
}

#[test]
fn certificates_exist_exactly_for_non_dual_instances_and_stay_small() {
    let meter = SpaceMeter::new();
    for li in generators::standard_corpus() {
        let cert = find_certificate(&li.g, &li.h, &meter).unwrap();
        assert_eq!(cert.is_some(), !li.dual, "{}", li.name);
        if let Some(cert) = cert {
            let check =
                verify_certificate(&li.g, &li.h, &cert, SpaceStrategy::MaterializeChain, &meter)
                    .unwrap();
            assert_eq!(check, CertificateCheck::RefutesDuality, "{}", li.name);
            // O(log² n) size with an explicit constant of 4
            let n = li.encoding_bits().max(2) as f64;
            let budget = 4.0 * n.log2() * n.log2();
            let bits = cert.bits(
                li.g.num_vertices().max(li.h.num_vertices()),
                li.g.num_edges().max(li.h.num_edges()),
            ) as f64;
            assert!(bits <= budget, "{}: {bits} > {budget}", li.name);
        }
    }
}

#[test]
fn metered_space_stays_within_a_constant_times_log_squared_on_the_scaling_family() {
    // The constant is generous (the meter counts every live register bit), but it must
    // not grow with the instance: we check that the per-instance ratio is bounded and
    // that it does not blow up across the family.
    let solver = QuadLogspaceSolver::new(SpaceStrategy::MaterializeChain);
    let mut ratios = Vec::new();
    for k in 1..=6 {
        let li = generators::matching_instance(k);
        let (result, report) = solver.decide_with_space(&li.g, &li.h).unwrap();
        assert!(result.is_dual());
        ratios.push(report.ratio_to_log2_squared());
    }
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max < 60.0, "space ratio grew unexpectedly: {ratios:?}");
    // The materializing strategy's working set is Θ(|V|·depth); on this family that is
    // still within a constant of log², which is what the last assertion checks, and the
    // ratios must in particular not be monotonically exploding.
    let first = ratios[1].max(1.0);
    let last = *ratios.last().unwrap();
    assert!(last <= 12.0 * first, "ratios diverge: {ratios:?}");
}
