//! Cross-crate integration: the batch query engine answers a mixed multi-worker
//! batch of ≥100 requests exactly as direct single-threaded solver calls do,
//! and the `serve` wire loop round-trips requests to correct JSON lines.

use qld_core::{decide_duality, verify_witness};
use qld_datamining::{borders_exact, identify, Identification, IdentificationInstance};
use qld_engine::{
    BordersOutcome, Engine, EngineConfig, Outcome, Request, Response, WitnessSummary,
};
use qld_hypergraph::transversal::minimal_transversals;
use qld_hypergraph::{generators, Hypergraph, VertexSet};
use qld_keys::minimal_keys_exact;

/// A deterministic mixed batch covering all four request kinds.
fn mixed_batch() -> Vec<Request> {
    let mut requests = Vec::new();
    // check: dual instances, their perturbations, and a few random pairs
    for li in generators::standard_corpus() {
        requests.push(Request::DecideDuality {
            g: li.g.clone(),
            h: li.h.clone(),
        });
    }
    for seed in 0..8 {
        let a = generators::random_simple_hypergraph(6, 4, 2..=4, seed);
        let b = generators::random_simple_hypergraph(6, 4, 2..=4, seed + 100);
        requests.push(Request::DecideDuality { g: a, h: b });
    }
    // enumerate: with and without limits
    for k in 1..=4 {
        let li = generators::matching_instance(k);
        requests.push(Request::EnumerateTransversals {
            g: li.g.clone(),
            limit: None,
        });
        requests.push(Request::EnumerateTransversals {
            g: li.g,
            limit: Some(3),
        });
    }
    // mine: complete and punctured borders over random relations
    for seed in 0..6 {
        let relation = qld_datamining::generators::random_relation(6, 16, 0.5, seed);
        let z = 3;
        let borders = borders_exact(&relation, z);
        requests.push(Request::IdentifyItemsetBorders {
            relation: relation.clone(),
            threshold: z,
            minimal_infrequent: borders.minimal_infrequent.clone(),
            maximal_frequent: borders.maximal_frequent.clone(),
        });
        let mut punctured = borders.maximal_frequent.clone();
        if !punctured.is_empty() {
            punctured.remove_edge(0);
        }
        requests.push(Request::IdentifyItemsetBorders {
            relation,
            threshold: z,
            minimal_infrequent: borders.minimal_infrequent,
            maximal_frequent: punctured,
        });
    }
    // keys: random relational instances
    for seed in 0..8 {
        requests.push(Request::FindMinimalKeys {
            instance: qld_keys::generators::random_instance(5, 8, 3, seed),
        });
    }
    // pad with repeats so the batch crosses 100 and exercises the cache
    let base = requests.clone();
    while requests.len() < 110 {
        requests.extend(base.iter().take(10).cloned());
    }
    requests
}

/// Checks one engine response against direct solver calls on the same request.
fn check_against_direct(request: &Request, response: &Response) {
    let outcome = response
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("request {} failed: {e}", response.id));
    match (request, outcome) {
        (Request::DecideDuality { g, h }, Outcome::Duality { dual, witness }) => {
            let (g, h) = (g.minimize(), h.minimize());
            let direct = decide_duality(&g, &h).unwrap();
            assert_eq!(*dual, direct.is_dual());
            match witness {
                None => assert!(*dual),
                Some(w) => {
                    // the engine's own witness must verify against the instance
                    let n = g.num_vertices().max(h.num_vertices());
                    let reconstructed =
                        match w {
                            WitnessSummary::NewTransversalOfG(t) => {
                                qld_core::NonDualWitness::NewTransversalOfG(
                                    VertexSet::from_indices(n, t.iter().copied()),
                                )
                            }
                            WitnessSummary::NewTransversalOfH(t) => {
                                qld_core::NonDualWitness::NewTransversalOfH(
                                    VertexSet::from_indices(n, t.iter().copied()),
                                )
                            }
                            // the engine reports the disjoint edges themselves;
                            // recover their positions in the minimized instance
                            WitnessSummary::DisjointEdges { g_edge, h_edge } => {
                                let g_index = g
                                    .edges()
                                    .iter()
                                    .position(|e| e.to_indices() == *g_edge)
                                    .expect("witness g_edge occurs in G");
                                let h_index = h
                                    .edges()
                                    .iter()
                                    .position(|e| e.to_indices() == *h_edge)
                                    .expect("witness h_edge occurs in H");
                                qld_core::NonDualWitness::DisjointEdges { g_index, h_index }
                            }
                        };
                    assert!(
                        verify_witness(&g, &h, &reconstructed),
                        "unverifiable witness {reconstructed:?}"
                    );
                }
            }
        }
        (
            Request::EnumerateTransversals { g, limit },
            Outcome::Transversals {
                transversals,
                complete,
            },
        ) => {
            let g = g.minimize();
            let exact = minimal_transversals(&g);
            let found = Hypergraph::from_edges(
                g.num_vertices(),
                transversals
                    .iter()
                    .map(|t| VertexSet::from_indices(g.num_vertices(), t.iter().copied())),
            );
            match limit {
                None => {
                    assert!(complete);
                    assert!(found.same_edge_set(&exact));
                }
                Some(l) => {
                    assert_eq!(*complete, exact.num_edges() <= *l);
                    assert_eq!(found.num_edges(), exact.num_edges().min(*l));
                    for t in found.edges() {
                        assert!(exact.contains_edge(t));
                    }
                }
            }
        }
        (
            Request::IdentifyItemsetBorders {
                relation,
                threshold,
                minimal_infrequent,
                maximal_frequent,
            },
            Outcome::Borders(result),
        ) => {
            let instance = IdentificationInstance::new(
                relation,
                *threshold,
                minimal_infrequent,
                maximal_frequent,
            );
            let direct = identify(&instance).unwrap();
            match (result, &direct) {
                (BordersOutcome::Complete, Identification::Complete) => {}
                (BordersOutcome::NewMaximalFrequent(s), Identification::Incomplete(_)) => {
                    let s = VertexSet::from_indices(relation.num_items(), s.iter().copied());
                    assert!(relation.is_maximal_frequent(&s, *threshold));
                    assert!(!maximal_frequent.contains_edge(&s));
                }
                (BordersOutcome::NewMinimalInfrequent(s), Identification::Incomplete(_)) => {
                    let s = VertexSet::from_indices(relation.num_items(), s.iter().copied());
                    assert!(relation.is_minimal_infrequent(&s, *threshold));
                    assert!(!minimal_infrequent.contains_edge(&s));
                }
                other => panic!("engine/direct identification disagree: {other:?}"),
            }
        }
        (
            Request::FindMinimalKeys { instance },
            Outcome::Keys {
                keys,
                duality_calls,
            },
        ) => {
            let exact = minimal_keys_exact(instance);
            let found = Hypergraph::from_edges(
                instance.num_attributes(),
                keys.iter()
                    .map(|k| VertexSet::from_indices(instance.num_attributes(), k.iter().copied())),
            );
            assert!(found.same_edge_set(&exact));
            assert_eq!(*duality_calls, exact.num_edges() + 1);
        }
        (req, out) => panic!("outcome kind mismatch: {req:?} vs {out:?}"),
    }
}

#[test]
fn multi_worker_batch_matches_direct_solver_calls() {
    let requests = mixed_batch();
    assert!(requests.len() >= 100, "batch too small: {}", requests.len());
    let engine = Engine::new(EngineConfig {
        workers: 4,
        queue_capacity: 8, // much smaller than the batch: exercises backpressure
        ..EngineConfig::default()
    });
    let responses = engine.run_batch(requests.clone());
    assert_eq!(responses.len(), requests.len());
    for (i, (request, response)) in requests.iter().zip(&responses).enumerate() {
        assert_eq!(response.id, i as u64);
        check_against_direct(request, response);
    }
    // The duplicated tail of the batch must have been served from the cache.
    assert!(
        engine.cache_stats().hits > 0,
        "expected cache hits on the duplicated requests"
    );
    // And every response reports which solver ran plus a wall-time.
    for response in &responses {
        assert!(!response.stats.solver.is_empty());
    }
}

#[test]
fn worker_counts_and_caching_do_not_change_answers() {
    let requests = mixed_batch();
    let reference: Vec<_> = Engine::new(EngineConfig {
        workers: 1,
        cache: false,
        ..EngineConfig::default()
    })
    .run_batch(requests.clone())
    .into_iter()
    .map(|r| r.outcome)
    .collect();
    for workers in [2, 4] {
        for cache in [false, true] {
            let engine = Engine::new(EngineConfig {
                workers,
                cache,
                ..EngineConfig::default()
            });
            let outcomes: Vec<_> = engine
                .run_batch(requests.clone())
                .into_iter()
                .map(|r| r.outcome)
                .collect();
            assert_eq!(outcomes, reference, "workers={workers} cache={cache}");
        }
    }
}

#[test]
fn serve_round_trips_the_acceptance_example() {
    // `echo 'check <G> <H>' | qld serve --workers 4`
    let engine = Engine::new(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });
    let input = "check 0,1;2,3 0,2;0,3;1,2;1,3\ncheck 0,1;2,3 0,2;0,3;1,2\n";
    let mut output = Vec::new();
    let summary = engine.serve(input.as_bytes(), &mut output).unwrap();
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.errors, 0);
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("\"id\":0") && lines[0].contains("\"dual\":true"));
    assert!(lines[1].contains("\"id\":1") && lines[1].contains("\"dual\":false"));
    assert!(lines[1].contains("\"witness\""));
}

#[test]
fn empty_edge_families_flow_through_the_cache_key_path_end_to_end() {
    // Guard the hex bitmap-word cache keys on the degenerate families: `{∅}`
    // (the constant-true DNF, `n=N:.`) and families mixing the empty edge
    // with real edges (`.;0,1`).  Permuted spellings of the same instance
    // must share one cache entry, and distinct degenerate families must not.
    // One worker: requests execute strictly in order, so each re-ask runs
    // after its original's insert (no racy misses).
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });

    // Wire → request → canonical key: permutations agree, `{∅}` ≠ `∅`.
    let empties = qld_engine::wire::parse_request("enumerate n=3:.;0,1").unwrap();
    let permuted = qld_engine::wire::parse_request("enumerate n=3:0,1;.").unwrap();
    assert_eq!(empties.cache_key(), permuted.cache_key());
    let true_dnf = qld_engine::wire::parse_request("enumerate n=3:.").unwrap();
    let edgeless = qld_engine::wire::parse_request("enumerate n=3:-").unwrap();
    assert_ne!(true_dnf.cache_key(), edgeless.cache_key());

    // End-to-end over the serve loop: the permuted re-ask is a cache hit.
    let input = "\
check n=3:. n=3:-
enumerate n=3:.;0,1
enumerate n=3:0,1;.
check n=3:. n=3:-
";
    let mut output = Vec::new();
    let summary = engine.serve(input.as_bytes(), &mut output).unwrap();
    assert_eq!(summary.requests, 4);
    assert_eq!(summary.errors, 0);
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // tr({∅}) = ∅, so `{∅}` and the edgeless family are dual.
    assert!(lines[0].contains("\"dual\":true"), "{}", lines[0]);
    // ∅ absorbs {0,1}: the minimized family is `{∅}`, whose transversal
    // family is empty — both spellings, the second from the cache.
    for line in &lines[1..=2] {
        assert!(line.contains("\"complete\":true"), "{line}");
        assert!(line.contains("\"count\":0"), "{line}");
    }
    assert!(lines[1].contains("\"cache_hit\":false"), "{}", lines[1]);
    assert!(lines[2].contains("\"cache_hit\":true"), "{}", lines[2]);
    assert!(lines[3].contains("\"cache_hit\":true"), "{}", lines[3]);
    // Exactly two distinct canonical keys were stored.
    assert_eq!(engine.cache_stats().entries, 2);
    assert_eq!(engine.cache_stats().hits, 2);
}
