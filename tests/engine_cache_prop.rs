//! Property tests for the engine's result cache.
//!
//! 1. Engine answers are independent of the cache: for random hypergraphs and
//!    batches containing duplicates, a cache-enabled engine must return
//!    outcome-for-outcome the same responses as a cache-less one (only the
//!    `cache_hit` stat may differ).
//! 2. The cache itself is a faithful LRU: against a naive reference model,
//!    any interleaving of inserts and lookups keeps at most `capacity`
//!    entries, evicts exactly the least-recently-used key, and counts every
//!    eviction.

use proptest::prelude::*;
use qld_engine::cache::{CachedResult, QueryCache};
use qld_engine::ops::ExecInfo;
use qld_engine::{Engine, EngineConfig, EngineError, Outcome, Request};
use qld_hypergraph::transversal::minimal_transversals;
use qld_hypergraph::{Hypergraph, VertexSet};

/// Strategy: a random simple hypergraph with non-empty edges over `n` vertices.
fn arb_simple_hypergraph(n: usize, max_edges: usize) -> impl Strategy<Value = Hypergraph> {
    prop::collection::vec(prop::collection::vec(0..n, 1..=n), 1..=max_edges).prop_map(
        move |edges| {
            Hypergraph::from_edges(n, edges.into_iter().map(|e| VertexSet::from_indices(n, e)))
                .minimize()
        },
    )
}

fn run_outcomes(
    cache: bool,
    workers: usize,
    requests: &[Request],
) -> Vec<Result<Outcome, EngineError>> {
    let engine = Engine::new(EngineConfig {
        workers,
        cache,
        queue_capacity: 4,
        ..EngineConfig::default()
    });
    engine
        .run_batch(requests.to_vec())
        .into_iter()
        .map(|r| r.outcome)
        .collect()
}

/// A trivial cached payload (the LRU model test only cares about keys).
fn payload() -> CachedResult {
    CachedResult {
        outcome: Ok(Outcome::Duality {
            dual: true,
            witness: None,
        }),
        info: ExecInfo::default(),
    }
}

/// Reference LRU: a recency-ordered key list (front = least recently used).
struct ModelLru {
    capacity: usize,
    keys: Vec<String>,
    evictions: u64,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            capacity,
            keys: Vec::new(),
            evictions: 0,
        }
    }

    fn touch(&mut self, key: &str) -> bool {
        if let Some(pos) = self.keys.iter().position(|k| k == key) {
            let k = self.keys.remove(pos);
            self.keys.push(k);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: &str) {
        if self.touch(key) {
            return;
        }
        if self.keys.len() >= self.capacity {
            self.keys.remove(0);
            self.evictions += 1;
        }
        self.keys.push(key.to_string());
    }
}

/// The hex token of a spilled set renders words low-first with trailing zero
/// words trimmed; the exact strings at both ends of a 3-word universe pin the
/// encoding down (a change here silently splits every persisted cache).
#[test]
fn spilled_tokens_trim_trailing_zero_words() {
    let low = Hypergraph::from_edges(129, [VertexSet::from_indices(129, [0])]);
    let high = Hypergraph::from_edges(129, [VertexSet::from_indices(129, [128])]);
    let low_key = Request::EnumerateTransversals {
        g: low,
        limit: None,
    }
    .cache_key();
    let high_key = Request::EnumerateTransversals {
        g: high,
        limit: None,
    }
    .cache_key();
    assert_eq!(low_key, "enumerate n=129:1 limit=all");
    assert_eq!(high_key, "enumerate n=129:0.0.1 limit=all");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache keys are permutation-invariant at the word boundaries of the
    /// set representation: re-asking the same edge family with edges in a
    /// different order yields the byte-identical key at universes of
    /// 63/64/65/127/128/129 vertices (inline, exactly-one-word, and spilled
    /// multi-word sets, around both the 64- and 128-bit seams).
    #[test]
    fn cache_keys_canonical_at_word_boundaries(
        raw in prop::collection::vec(prop::collection::vec(0usize..129, 1usize..6), 1usize..5),
        rot in 0usize..4,
    ) {
        for n in [63usize, 64, 65, 127, 128, 129] {
            let edges: Vec<VertexSet> = raw
                .iter()
                .map(|e| VertexSet::from_indices(n, e.iter().map(|&v| v % n)))
                .collect();
            let g = Hypergraph::from_edges(n, edges.clone());
            let base = Request::DecideDuality { g: g.clone(), h: g.clone() }.cache_key();
            let mut reversed = edges.clone();
            reversed.reverse();
            let mut rotated = edges.clone();
            rotated.rotate_left(rot % edges.len());
            for perm in [reversed, rotated] {
                let pg = Hypergraph::from_edges(n, perm);
                let key = Request::DecideDuality { g: pg.clone(), h: pg }.cache_key();
                prop_assert!(
                    key == base,
                    "permuted re-ask split the cache at n={n}: {key} vs {base}"
                );
            }
        }
    }

    /// Cache-on and cache-off engines agree on batches with duplicates, and
    /// both agree with the exact dual for honest instances.
    #[test]
    fn cache_on_and_off_agree(
        g in arb_simple_hypergraph(5, 4),
        h in arb_simple_hypergraph(5, 4),
        limit in 1usize..6,
    ) {
        let dual = minimal_transversals(&g);
        let requests = vec![
            Request::DecideDuality { g: g.clone(), h: dual.clone() },
            Request::DecideDuality { g: g.clone(), h: h.clone() },
            Request::EnumerateTransversals { g: g.clone(), limit: Some(limit) },
            Request::EnumerateTransversals { g: g.clone(), limit: None },
            // exact duplicates: the cached run must still answer identically
            Request::DecideDuality { g: g.clone(), h: dual.clone() },
            Request::DecideDuality { g: g.clone(), h: h.clone() },
            Request::EnumerateTransversals { g: g.clone(), limit: Some(limit) },
        ];
        let cached = run_outcomes(true, 3, &requests);
        let uncached = run_outcomes(false, 1, &requests);
        prop_assert_eq!(&cached, &uncached);
        // spot-check semantic correctness of the shared answers
        match &cached[0] {
            Ok(Outcome::Duality { dual: is_dual, .. }) => prop_assert!(*is_dual),
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
        match &cached[3] {
            Ok(Outcome::Transversals { transversals, complete }) => {
                prop_assert!(*complete);
                prop_assert_eq!(transversals.len(), dual.num_edges());
            }
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    /// Permuting edges (same canonical instance) must share cache entries and
    /// still answer correctly.
    #[test]
    fn permuted_duplicates_share_cache_entries(g in arb_simple_hypergraph(5, 4)) {
        let dual = minimal_transversals(&g);
        let mut reversed_edges: Vec<VertexSet> = g.edges().to_vec();
        reversed_edges.reverse();
        let permuted = Hypergraph::from_edges(g.num_vertices(), reversed_edges);
        let requests = vec![
            Request::DecideDuality { g: g.clone(), h: dual.clone() },
            Request::DecideDuality { g: permuted, h: dual.clone() },
        ];
        let engine = Engine::new(EngineConfig { workers: 1, cache: true, ..EngineConfig::default() });
        let responses = engine.run_batch(requests);
        prop_assert_eq!(&responses[0].outcome, &responses[1].outcome);
        prop_assert_eq!(engine.cache_stats().entries, 1);
        prop_assert!(responses[1].stats.cache_hit);
    }

    /// The LRU cache agrees with a naive reference model on every
    /// interleaving of inserts and lookups: capacity respected, the
    /// most-recently-used keys survive, the least-recently-used is evicted,
    /// and the eviction counter is exact.  Capacity 1 (the acceptance case)
    /// is included in the strategy range.
    #[test]
    fn lru_cache_matches_reference_model(
        capacity in 1usize..5,
        // Each op encodes (insert-or-lookup, key) in one draw, since the
        // offline proptest shim has no tuple strategies.
        ops in prop::collection::vec(0usize..16, 1usize..=64),
    ) {
        let cache = QueryCache::with_capacity(capacity);
        let mut model = ModelLru::new(capacity);
        for op in ops {
            let key = format!("k{}", op / 2);
            if op % 2 == 0 {
                cache.insert(key.clone(), payload());
                model.insert(&key);
            } else {
                let real_hit = cache.get(&key).is_some();
                let model_hit = model.touch(&key);
                prop_assert!(
                    real_hit == model_hit,
                    "lookup of {key} diverged from the model: cache={real_hit} model={model_hit}"
                );
            }
            let stats = cache.stats();
            prop_assert!(stats.entries as usize <= capacity, "capacity exceeded");
            prop_assert_eq!(stats.entries as usize, model.keys.len());
            prop_assert_eq!(stats.evictions, model.evictions);
        }
        // Post-condition: exactly the model's resident keys answer, and the
        // most recently used key always survived.
        if let Some(mru) = model.keys.last() {
            prop_assert!(cache.get(mru).is_some(), "MRU key {} missing", mru);
        }
    }
}
