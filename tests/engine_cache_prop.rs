//! Property test: engine answers are independent of the result cache.
//!
//! For random hypergraphs and batches containing duplicates, a cache-enabled
//! engine must return outcome-for-outcome the same responses as a cache-less
//! one (only the `cache_hit` stat may differ).

use proptest::prelude::*;
use qld_engine::{Engine, EngineConfig, Request};
use qld_hypergraph::transversal::minimal_transversals;
use qld_hypergraph::{Hypergraph, VertexSet};

/// Strategy: a random simple hypergraph with non-empty edges over `n` vertices.
fn arb_simple_hypergraph(n: usize, max_edges: usize) -> impl Strategy<Value = Hypergraph> {
    prop::collection::vec(prop::collection::vec(0..n, 1..=n), 1..=max_edges).prop_map(
        move |edges| {
            Hypergraph::from_edges(n, edges.into_iter().map(|e| VertexSet::from_indices(n, e)))
                .minimize()
        },
    )
}

fn run_outcomes(
    cache: bool,
    workers: usize,
    requests: &[Request],
) -> Vec<Result<qld_engine::Outcome, String>> {
    let engine = Engine::new(EngineConfig {
        workers,
        cache,
        queue_capacity: 4,
        ..EngineConfig::default()
    });
    engine
        .run_batch(requests.to_vec())
        .into_iter()
        .map(|r| r.outcome)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache-on and cache-off engines agree on batches with duplicates, and
    /// both agree with the exact dual for honest instances.
    #[test]
    fn cache_on_and_off_agree(
        g in arb_simple_hypergraph(5, 4),
        h in arb_simple_hypergraph(5, 4),
        limit in 1usize..6,
    ) {
        let dual = minimal_transversals(&g);
        let requests = vec![
            Request::DecideDuality { g: g.clone(), h: dual.clone() },
            Request::DecideDuality { g: g.clone(), h: h.clone() },
            Request::EnumerateTransversals { g: g.clone(), limit: Some(limit) },
            Request::EnumerateTransversals { g: g.clone(), limit: None },
            // exact duplicates: the cached run must still answer identically
            Request::DecideDuality { g: g.clone(), h: dual.clone() },
            Request::DecideDuality { g: g.clone(), h: h.clone() },
            Request::EnumerateTransversals { g: g.clone(), limit: Some(limit) },
        ];
        let cached = run_outcomes(true, 3, &requests);
        let uncached = run_outcomes(false, 1, &requests);
        prop_assert_eq!(&cached, &uncached);
        // spot-check semantic correctness of the shared answers
        match &cached[0] {
            Ok(qld_engine::Outcome::Duality { dual: is_dual, .. }) => prop_assert!(*is_dual),
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
        match &cached[3] {
            Ok(qld_engine::Outcome::Transversals { transversals, complete }) => {
                prop_assert!(*complete);
                prop_assert_eq!(transversals.len(), dual.num_edges());
            }
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    /// Permuting edges (same canonical instance) must share cache entries and
    /// still answer correctly.
    #[test]
    fn permuted_duplicates_share_cache_entries(g in arb_simple_hypergraph(5, 4)) {
        let dual = minimal_transversals(&g);
        let mut reversed_edges: Vec<VertexSet> = g.edges().to_vec();
        reversed_edges.reverse();
        let permuted = Hypergraph::from_edges(g.num_vertices(), reversed_edges);
        let requests = vec![
            Request::DecideDuality { g: g.clone(), h: dual.clone() },
            Request::DecideDuality { g: permuted, h: dual.clone() },
        ];
        let engine = Engine::new(EngineConfig { workers: 1, cache: true, ..EngineConfig::default() });
        let responses = engine.run_batch(requests);
        prop_assert_eq!(&responses[0].outcome, &responses[1].outcome);
        prop_assert_eq!(engine.cache_stats().entries, 1);
        prop_assert!(responses[1].stats.cache_hit);
    }
}
