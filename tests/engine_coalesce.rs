//! Stampede tests for the engine's single-flight coalescing layer: N
//! concurrent identical requests must execute the solver exactly once, with
//! every follower answered byte-identically to the leader (modulo its own
//! `id`/`client_id` envelope), both in-process and over the Unix-socket
//! transport — and a cancelled leader must detach without killing the
//! flight for its followers.
//!
//! Determinism: the tests gate the *execution* inside a custom
//! [`SolverPolicy`] (every duality decision — including each step of a
//! transversal enumeration — consults the policy), so the leader is provably
//! mid-flight while the duplicates join.  No sleeps are load-bearing; the
//! spin loops only bound how long a regression can hang the suite.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use qld_engine::{
    Engine, EngineConfig, Outcome, Request, SolverKind, SolverPolicy, StopReason, StreamEvent,
    StreamRunOptions,
};
use qld_hypergraph::{generators, Hypergraph};

/// A policy that counts how many times it is consulted and can hold the
/// calling execution at a chosen call number until the test releases it.
struct GatePolicy {
    calls: AtomicU64,
    /// Block the execution when `calls` reaches this value...
    gate_at: u64,
    /// ...until this flips to `true`.
    release: AtomicBool,
}

impl GatePolicy {
    fn new(gate_at: u64) -> Arc<GatePolicy> {
        Arc::new(GatePolicy {
            calls: AtomicU64::new(0),
            gate_at,
            release: AtomicBool::new(false),
        })
    }

    fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    fn release(&self) {
        self.release.store(true, Ordering::SeqCst);
    }
}

impl SolverPolicy for GatePolicy {
    fn choose(&self, _g: &Hypergraph, _h: &Hypergraph) -> SolverKind {
        let call = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        if call == self.gate_at {
            let deadline = Instant::now() + Duration::from_secs(10);
            while !self.release.load(Ordering::SeqCst) && Instant::now() < deadline {
                thread::sleep(Duration::from_millis(1));
            }
        }
        SolverKind::BmTree
    }

    fn name(&self) -> &'static str {
        "gate"
    }
}

fn gated_engine(policy: &Arc<GatePolicy>, workers: usize) -> Engine {
    Engine::new(EngineConfig {
        workers,
        cache: true,
        policy: Arc::clone(policy) as Arc<dyn SolverPolicy>,
        ..EngineConfig::default()
    })
}

fn check_request() -> Request {
    let li = generators::matching_instance(3);
    Request::DecideDuality { g: li.g, h: li.h }
}

fn enumerate_request() -> Request {
    // matching(3) has exactly 2^3 = 8 minimal transversals, so a complete
    // enumeration makes 9 policy-routed duality calls (one per item plus
    // the final "dual" confirmation).
    let li = generators::matching_instance(3);
    Request::EnumerateTransversals {
        g: li.g,
        limit: None,
    }
}

/// Spins until `cond` holds (or panics after 10 s with `what`).
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn one_shot_stampede_executes_the_solver_once() {
    const K: usize = 8;
    let policy = GatePolicy::new(1); // hold the very first decision
    let eng = Arc::new(gated_engine(&policy, 2));

    let mut stampede = Vec::new();
    for _ in 0..K {
        let eng = Arc::clone(&eng);
        stampede.push(thread::spawn(move || eng.run_one(check_request())));
    }
    // Provably concurrent: the leader is parked inside its first duality
    // decision until every other request has attached to its flight.
    wait_until("all duplicates to join the flight", || {
        eng.coalesce_stats().1 >= (K - 1) as u64
    });
    policy.release();

    let responses: Vec<_> = stampede.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(policy.calls(), 1, "the solver must run exactly once");
    assert_eq!(eng.coalesce_stats(), (1, (K - 1) as u64));
    assert_eq!(eng.cache_stats().entries, 1);
    // Followers answer byte-identically to the leader: same outcome, same
    // telemetry, and (single-request sessions) even the same `id`.
    let lines: Vec<String> = responses.iter().map(|r| r.to_json_line()).collect();
    for line in &lines {
        assert_eq!(line, &lines[0], "stampede responses must not differ");
    }
    assert_eq!(
        responses[0].outcome,
        Ok(Outcome::Duality {
            dual: true,
            witness: None
        })
    );
    assert!(responses.iter().all(|r| !r.stats.cache_hit));
}

#[test]
fn streamed_stampede_fans_out_byte_identical_chunks() {
    const FOLLOWERS: usize = 4;
    // Hold the third duality decision: the leader has produced exactly two
    // chunks when the followers join, so they replay two buffered chunks and
    // then ride the live stream for the remaining six.
    let policy = GatePolicy::new(3);
    let eng = Arc::new(gated_engine(&policy, 2));

    let leader = eng.run_streaming(enumerate_request(), StreamRunOptions::default());
    let mut leader_events = Vec::new();
    for _ in 0..2 {
        match leader.next_event_timeout(Duration::from_secs(10)) {
            Some(event @ StreamEvent::Chunk(_)) => leader_events.push(event),
            other => panic!("expected a chunk frame, got {other:?}"),
        }
    }
    let followers: Vec<_> = (0..FOLLOWERS)
        .map(|i| {
            eng.run_streaming(
                enumerate_request(),
                StreamRunOptions {
                    client_id: Some(format!("f{i}")),
                    ..StreamRunOptions::default()
                },
            )
        })
        .collect();
    wait_until("followers to subscribe", || {
        eng.coalesce_stats().1 >= FOLLOWERS as u64
    });
    policy.release();

    leader_events.extend(&leader);
    let follower_events: Vec<Vec<StreamEvent>> =
        followers.iter().map(|f| f.into_iter().collect()).collect();

    assert_eq!(policy.calls(), 9, "one execution: 8 items + final dual");
    assert_eq!(eng.coalesce_stats(), (1, FOLLOWERS as u64));

    let items = |events: &[StreamEvent]| -> Vec<ChunkKey> {
        events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Chunk(frame) => Some((frame.seq, frame.to_json_line())),
                StreamEvent::Done(_) => None,
            })
            .collect()
    };
    type ChunkKey = (u64, String);
    let leader_chunks = items(&leader_events);
    assert_eq!(leader_chunks.len(), 8);
    for (i, (seq, _)) in leader_chunks.iter().enumerate() {
        assert_eq!(*seq, i as u64, "per-request chunk numbering");
    }
    for (f, events) in follower_events.iter().enumerate() {
        let chunks = items(events);
        // Byte-identical modulo the follower's own envelope: strip the
        // correlation token it asked for and the frames must match the
        // leader's exactly (same `id` here — single-request handles).
        let stripped: Vec<ChunkKey> = chunks
            .iter()
            .map(|(seq, line)| (*seq, line.replace(&format!(",\"client_id\":\"f{f}\""), "")))
            .collect();
        assert_eq!(stripped, leader_chunks, "follower {f} chunk stream");
        let Some(StreamEvent::Done(terminal)) = events.last() else {
            panic!("follower {f} stream did not end in a terminal");
        };
        assert_eq!(terminal.outcome, leader_terminal(&leader_events).outcome);
        assert_eq!(terminal.halted, None);
        assert_eq!(terminal.chunks, Some(8));
    }
    match &leader_terminal(&leader_events).outcome {
        Ok(Outcome::Transversals {
            transversals,
            complete,
        }) => {
            assert!(*complete);
            assert_eq!(transversals.len(), 8);
        }
        other => panic!("unexpected terminal outcome: {other:?}"),
    }
}

fn leader_terminal(events: &[StreamEvent]) -> &qld_engine::Response {
    match events.last() {
        Some(StreamEvent::Done(response)) => response,
        other => panic!("leader stream did not end in a terminal: {other:?}"),
    }
}

#[test]
fn cancelled_leader_detaches_and_followers_get_the_full_stream() {
    // Hold the third decision again: two chunks are out when the follower
    // joins and the leader is cancelled — mid-stream by construction.
    let policy = GatePolicy::new(3);
    let eng = Arc::new(gated_engine(&policy, 2));

    let leader = eng.run_streaming(enumerate_request(), StreamRunOptions::default());
    for _ in 0..2 {
        match leader.next_event_timeout(Duration::from_secs(10)) {
            Some(StreamEvent::Chunk(_)) => {}
            other => panic!("expected a chunk frame, got {other:?}"),
        }
    }
    let follower = eng.run_streaming(enumerate_request(), StreamRunOptions::default());
    wait_until("the follower to subscribe", || eng.coalesce_stats().1 >= 1);
    leader.cancel_token().cancel();
    policy.release();

    // The follower sees the whole stream: the flight outlived its leader.
    let follower_events: Vec<StreamEvent> = (&follower).into_iter().collect();
    let chunk_count = follower_events
        .iter()
        .filter(|e| matches!(e, StreamEvent::Chunk(_)))
        .count();
    assert_eq!(chunk_count, 8, "follower stream is complete");
    let Some(StreamEvent::Done(f_terminal)) = follower_events.last() else {
        panic!("follower stream did not end in a terminal");
    };
    assert_eq!(f_terminal.halted, None);
    match &f_terminal.outcome {
        Ok(Outcome::Transversals {
            transversals,
            complete,
        }) => {
            assert!(*complete);
            assert_eq!(transversals.len(), 8);
        }
        other => panic!("unexpected follower outcome: {other:?}"),
    }

    // The leader detached with the partial it had consumed.
    let leader_rest: Vec<StreamEvent> = (&leader).into_iter().collect();
    let Some(StreamEvent::Done(l_terminal)) = leader_rest.last() else {
        panic!("leader stream did not end in a terminal");
    };
    assert_eq!(l_terminal.halted, Some(StopReason::Cancelled));
    match &l_terminal.outcome {
        Ok(Outcome::Transversals {
            transversals,
            complete,
        }) => {
            assert!(!complete, "the leader's answer is a partial");
            assert!(
                transversals.len() < 8,
                "cancelled before the stream finished"
            );
        }
        other => panic!("unexpected leader outcome: {other:?}"),
    }
    // The flight ran to its natural end, so the result was cached even
    // though the original leader gave up along the way.
    assert_eq!(eng.cache_stats().entries, 1);
    assert_eq!(policy.calls(), 9, "still exactly one execution");
}

#[cfg(unix)]
#[test]
fn socket_stampede_coalesces_across_sessions() {
    use qld_engine::{ServeOptions, SocketServer};
    use std::io::{BufRead, BufReader, Write};

    const K: usize = 8;
    let path =
        std::env::temp_dir().join(format!("qld-coalesce-stampede-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let policy = GatePolicy::new(1);
    let eng = Arc::new(gated_engine(&policy, 2));
    let server = SocketServer::bind(&path).unwrap();
    let shutdown = server.shutdown_handle();
    let eng_ref = Arc::clone(&eng);
    let runner = thread::spawn(move || server.run(&eng_ref, ServeOptions::default()));

    let mut clients = Vec::new();
    for _ in 0..K {
        let path = path.clone();
        clients.push(thread::spawn(move || {
            let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
            stream
                .write_all(b"check 0,1;2,3;4,5 0,2,4;0,2,5;0,3,4;0,3,5;1,2,4;1,2,5;1,3,4;1,3,5\n")
                .unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
            assert_eq!(lines.len(), 1);
            lines.into_iter().next().unwrap()
        }));
    }
    wait_until("all sessions to join the flight", || {
        eng.coalesce_stats().1 >= (K - 1) as u64
    });
    policy.release();

    let lines: Vec<String> = clients.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(policy.calls(), 1, "one execution across {K} sessions");
    assert_eq!(eng.coalesce_stats(), (1, (K - 1) as u64));
    for line in &lines {
        // Every session numbered its one request 0, so the full lines —
        // telemetry included — are byte-identical.
        assert_eq!(line, &lines[0]);
        assert!(line.contains("\"dual\":true"), "{line}");
    }

    // The engine's own stats surface reports the flight ledger.
    let mut stream = std::os::unix::net::UnixStream::connect(&path).unwrap();
    stream.write_all(b"stats\n").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut stats_line = String::new();
    BufReader::new(stream).read_line(&mut stats_line).unwrap();
    assert!(stats_line.contains("\"flights\":1"), "{stats_line}");
    assert!(
        stats_line.contains(&format!("\"coalesced\":{}", K - 1)),
        "{stats_line}"
    );

    shutdown.shutdown();
    runner.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn no_coalesce_disables_the_flight_layer_but_keeps_the_cache() {
    let eng = Engine::new(EngineConfig {
        workers: 2,
        cache: true,
        coalesce: false,
        ..EngineConfig::default()
    });
    let first = eng.run_one(check_request());
    let second = eng.run_one(check_request());
    assert!(!first.stats.cache_hit);
    assert!(second.stats.cache_hit, "the cache still dedups in sequence");
    assert_eq!(eng.coalesce_stats(), (0, 0));
}
