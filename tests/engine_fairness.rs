//! Property-based model tests for the per-user token bucket
//! (`qld_engine::fairness`) plus end-to-end `auth=` admission through a
//! serve session: refill arithmetic, the burst cap, backwards-clock
//! regressions, per-user isolation, and the `throttled` stats counter.

use proptest::prelude::*;
use qld_engine::{Bucket, Engine, EngineConfig, ServeOptions, UserBuckets};
use std::sync::Arc;

const NANOS_PER_SEC: f64 = 1_000_000_000.0;

/// Drives one bucket through `times` (absolute nanos, in the given order) and
/// returns how many requests were admitted.
fn admitted(bucket: &mut Bucket, times: &[u64], rate: f64, burst: f64) -> usize {
    times
        .iter()
        .filter(|&&t| bucket.try_admit(t, rate, burst))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A fresh bucket floods exactly `burst` admissions at one instant, no
    /// matter the rate: the burst is a hard cap, not a refill artifact.
    #[test]
    fn a_flood_at_one_instant_admits_exactly_the_burst(
        n in 0..40usize,
        burst in 1..=10u32,
        rate in 0..1000u32,
    ) {
        let burst = f64::from(burst);
        let mut bucket = Bucket::full(burst, 0);
        let times = vec![7u64; n];
        let got = admitted(&mut bucket, &times, f64::from(rate), burst);
        prop_assert_eq!(got, n.min(burst as usize));
    }

    /// Requests spaced at least two refill periods apart are all admitted:
    /// the bucket regains a full token (with slack for float rounding)
    /// between any two of them.
    #[test]
    fn requests_slower_than_the_rate_are_never_throttled(
        rate in 1..=1000u32,
        k in 1..40u64,
    ) {
        let rate = f64::from(rate);
        let period = (2.0 * NANOS_PER_SEC / rate).ceil() as u64 + 1;
        let mut bucket = Bucket::full(1.0, 0);
        for i in 0..k {
            prop_assert!(
                bucket.try_admit(i * period, rate, 1.0),
                "request {i} of {k} at rate {rate}/s was throttled"
            );
        }
    }

    /// Conservation: over any (sorted) schedule, total admissions never
    /// exceed the initial burst plus what the elapsed time can mint.
    #[test]
    fn admissions_never_exceed_burst_plus_minted_tokens(
        deltas in prop::collection::vec(0..200_000_000u64, 1..60usize),
        burst in 1..=5u32,
        rate in 1..=50u32,
    ) {
        let burst = f64::from(burst);
        let rate = f64::from(rate);
        let mut times = Vec::with_capacity(deltas.len());
        let mut now = 0u64;
        for d in &deltas {
            now += d;
            times.push(now);
        }
        let elapsed = *times.last().unwrap();
        let mut bucket = Bucket::full(burst, 0);
        let got = admitted(&mut bucket, &times, rate, burst) as f64;
        // +1.0 slack: a token minted mid-interval may legitimately be spent
        // before the interval's end.
        let ceiling = burst + (elapsed as f64) * rate / NANOS_PER_SEC + 1.0;
        prop_assert!(
            got <= ceiling,
            "{got} admissions > burst {burst} + minted ceiling {ceiling}"
        );
    }

    /// A clock running backwards mints nothing: replaying the same (or an
    /// earlier) timestamp admits at most the burst in total, exactly as if
    /// time had stood still.  Regression guard for non-monotonic clocks.
    #[test]
    fn a_backwards_clock_mints_no_tokens(
        times in prop::collection::vec(0..1_000_000u64, 2..40usize),
        burst in 1..=6u32,
    ) {
        let burst = f64::from(burst);
        let mut descending = times.clone();
        descending.sort_unstable_by(|a, b| b.cmp(a));
        let mut bucket = Bucket::full(burst, *descending.first().unwrap());
        let got = admitted(&mut bucket, &descending, 1000.0, burst);
        prop_assert!(
            got <= burst as usize,
            "{got} admissions on a non-advancing clock > burst {burst}"
        );
    }

    /// Users never share tokens: whatever one user's flood does, another
    /// user's first request is admitted with a full burst.
    #[test]
    fn one_users_flood_cannot_starve_another(
        flood in 1..200usize,
        burst in 1..=4u32,
    ) {
        let quota = UserBuckets::new(5.0, f64::from(burst));
        let mut flooded = 0;
        for _ in 0..flood {
            if quota.admit_at("alice", 50) {
                flooded += 1;
            }
        }
        prop_assert_eq!(flooded, flood.min(burst as usize));
        prop_assert!(quota.admit_at("bob", 50), "bob was starved by alice");
    }
}

/// End to end: `auth=` on the wire maps requests to user buckets, rejections
/// are `quota` errors that consume their `id` slot, anonymous requests are
/// never throttled, and `stats` reports the `throttled` counter.
#[test]
fn serve_sessions_enforce_user_admission_and_report_throttled() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });
    // Effectively no refill within the test: 2 admissions per user, period.
    let quota = Arc::new(UserBuckets::new(0.000_001, 2.0));
    let options = ServeOptions {
        user_quota: Some(Arc::clone(&quota)),
        ..ServeOptions::default()
    };
    let mut input = String::new();
    for i in 0..5 {
        input.push_str(&format!("check 0,1 0;1 auth=alice id=a{i}\n"));
    }
    input.push_str("check 0,1 0;1 auth=bob id=b0\n");
    input.push_str("check 0,1 0;1 id=anon\n");
    input.push_str("stats id=final\n");

    let mut out = Vec::new();
    let summary = engine
        .serve_with(input.as_bytes(), &mut out, &options)
        .unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 8, "{text}");

    // alice: burst of 2 admitted, the next 3 rejected at admission.
    for (i, line) in lines[..5].iter().enumerate() {
        assert!(line.contains(&format!("\"client_id\":\"a{i}\"")), "{line}");
        if i < 2 {
            assert!(line.contains("\"dual\":true"), "{line}");
        } else {
            assert!(
                line.contains("\"code\":\"quota\"") && line.contains("`alice`"),
                "{line}"
            );
        }
    }
    // bob and the anonymous client are untouched by alice's flood.
    assert!(lines[5].contains("\"dual\":true"), "{}", lines[5]);
    assert!(lines[6].contains("\"dual\":true"), "{}", lines[6]);
    // The stats snapshot counts the three rejections.
    assert!(lines[7].contains("\"throttled\":3"), "{}", lines[7]);
    assert_eq!(summary.requests, 8);
    assert_eq!(summary.errors, 3);
    assert_eq!(quota.tracked_users(), 2);
}

/// `auth=` is additive: a session with no configured quota accepts the
/// keyword and never throttles anyone.
#[test]
fn auth_without_a_configured_quota_is_a_no_op() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let input: String = (0..10)
        .map(|i| format!("check 0,1 0;1 auth=alice id=q{i}\n"))
        .collect();
    let mut out = Vec::new();
    let summary = engine
        .serve_with(input.as_bytes(), &mut out, &ServeOptions::default())
        .unwrap();
    assert_eq!(summary.requests, 10);
    assert_eq!(summary.errors, 0);
}
