//! Integration tests for the daemon lifecycle: cache snapshots surviving an
//! engine restart (`--cache-file`) and signal-driven graceful shutdown
//! (SIGUSR1 stands in for SIGINT/SIGTERM so the test harness process never
//! receives a signal whose default disposition kills it).

use qld_engine::{wire, Engine, EngineConfig, Request, ServeOptions};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A unique snapshot path per test.
fn temp_snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qld-snap-{}-{}.cache", tag, std::process::id()))
}

fn config_with(cache_file: PathBuf, workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        cache_file: Some(cache_file),
        ..EngineConfig::default()
    }
}

fn request(line: &str) -> Request {
    wire::parse_request(line).unwrap()
}

/// A mix of every request kind, including a non-dual witness and an
/// execute-stage error (all of which the cache stores and the snapshot must
/// reproduce).
fn workload() -> Vec<Request> {
    vec![
        request("check 0,1;2,3 0,2;0,3;1,2;1,3"),
        request("check 0,1;2,3 0,2"),
        request("enumerate n=4:0,1;2,3 limit=2"),
        request("mine 0,1;0,1;1,2 z=1"),
        request("keys 1,2;1,3"),
        // Border family outside the relation's universe: an execute error,
        // which is deterministic and therefore cached too.
        request("mine 0,1;0,1 z=1 g=n=5:4"),
    ]
}

#[test]
fn snapshot_round_trip_turns_recomputation_into_hits() {
    let path = temp_snapshot_path("roundtrip");
    let _ = std::fs::remove_file(&path);

    let first = Engine::new(config_with(path.clone(), 2));
    assert_eq!(first.cache_restored(), 0, "no snapshot yet");
    let originals = first.run_batch(workload());
    assert!(originals.iter().all(|r| !r.stats.cache_hit));
    let written = first
        .save_configured_cache_snapshot()
        .unwrap()
        .expect("a cache file is configured");
    assert_eq!(written, workload().len() as u64);
    drop(first);

    let second = Engine::new(config_with(path.clone(), 2));
    assert_eq!(second.cache_restored(), workload().len() as u64);
    let replays = second.run_batch(workload());
    for (original, replay) in originals.iter().zip(&replays) {
        assert!(
            replay.stats.cache_hit,
            "expected a hit after restart: {}",
            replay.to_json_line()
        );
        assert_eq!(replay.outcome, original.outcome);
        // The first execution's telemetry rides along in the snapshot.
        assert_eq!(replay.stats.solver, original.stats.solver);
        assert_eq!(replay.stats.duality_calls, original.stats.duality_calls);
        assert_eq!(replay.stats.peak_bits, original.stats.peak_bits);
    }
    let stats = second.cache_stats();
    assert_eq!(stats.hits, workload().len() as u64);
    assert_eq!(stats.misses, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn permuted_requests_hit_the_restored_canonical_keys() {
    let path = temp_snapshot_path("permuted");
    let _ = std::fs::remove_file(&path);

    let first = Engine::new(config_with(path.clone(), 2));
    first.run_one(request("check 0,1;2,3 0,2;0,3;1,2;1,3"));
    first.save_configured_cache_snapshot().unwrap();
    drop(first);

    // The restarted engine answers a *permuted* spelling of the same instance
    // from the snapshot: canonical keys, not raw request text, are persisted.
    let second = Engine::new(config_with(path.clone(), 2));
    let permuted = second.run_one(request("check 2,3;0,1 1,3;1,2;0,3;0,2"));
    assert!(permuted.stats.cache_hit, "{}", permuted.to_json_line());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_snapshots_start_cold_not_half_warm() {
    let path = temp_snapshot_path("corrupt");
    std::fs::write(&path, "qldcache 999 1\n0\tk\tok check dual\t-\t0\t0\n").unwrap();
    let engine = Engine::new(config_with(path.clone(), 1));
    assert_eq!(engine.cache_restored(), 0);
    assert_eq!(engine.cache_stats().entries, 0);
    // The failure is surfaced, not swallowed: a configured warm start that
    // silently came up cold would hide disk corruption forever.
    let reason = engine.cache_restore_error().expect("error surfaced");
    assert!(reason.contains("version"), "{reason}");
    // The engine still works; it just starts cold.
    let response = engine.run_one(request("check 0,1 0;1"));
    assert!(response.is_ok());
    // A missing snapshot is a normal first boot, not an error.
    let _ = std::fs::remove_file(&path);
    let fresh = Engine::new(config_with(path.clone(), 1));
    assert!(fresh.cache_restore_error().is_none());
    assert_eq!(fresh.cache_restored(), 0);
}

#[test]
fn ttl_expired_entries_do_not_survive_a_restart() {
    let path = temp_snapshot_path("ttl");
    let _ = std::fs::remove_file(&path);
    let with_ttl = |path: PathBuf| EngineConfig {
        workers: 1,
        cache_ttl: Some(Duration::from_millis(60)),
        cache_file: Some(path),
        ..EngineConfig::default()
    };

    let first = Engine::new(with_ttl(path.clone()));
    first.run_one(request("check 0,1 0;1"));
    first.save_configured_cache_snapshot().unwrap();
    drop(first);

    // Restart *after* the TTL has elapsed: the snapshot carries the entry's
    // age, so the restored daemon must treat it as already dead.
    std::thread::sleep(Duration::from_millis(80));
    let second = Engine::new(with_ttl(path.clone()));
    assert_eq!(second.cache_restored(), 0, "stale entries must be dropped");
    let recomputed = second.run_one(request("check 0,1 0;1"));
    assert!(!recomputed.stats.cache_hit);
    let _ = std::fs::remove_file(&path);
}

/// The full daemon lifecycle, in-process: a socket server armed with
/// signal-driven shutdown drains on a raised signal, the snapshot is written,
/// and a restarted daemon answers the same (permuted) query as a cache hit
/// visible through the wire `stats` counters.
#[cfg(unix)]
#[test]
fn signal_driven_shutdown_persists_the_cache_across_daemon_restarts() {
    use qld_engine::SocketServer;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let socket = std::env::temp_dir().join(format!("qld-sig-{}.sock", std::process::id()));
    let snapshot = temp_snapshot_path("signal");
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&snapshot);

    let ask = |socket: &PathBuf, lines: &str| -> Vec<String> {
        let mut stream = UnixStream::connect(socket).unwrap();
        stream.write_all(lines.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
    };

    // First daemon: warm the cache, then shut down via a raised signal.
    let engine = Arc::new(Engine::new(config_with(snapshot.clone(), 2)));
    let server = SocketServer::bind(&socket).unwrap();
    let handle = server.shutdown_handle();
    qld_engine::trip_on_signals(&[signal::Signal::User1], move |_| handle.shutdown())
        .expect("signal handler install");
    let engine_ref = Arc::clone(&engine);
    let runner = std::thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));

    let warm = ask(&socket, "check 0,1;2,3 0,2;0,3;1,2;1,3 id=warm\n");
    assert_eq!(warm.len(), 1);
    assert!(warm[0].contains("\"dual\":true"), "{}", warm[0]);
    assert!(warm[0].contains("\"cache_hit\":false"), "{}", warm[0]);

    signal::raise(signal::Signal::User1).expect("raise signal");
    let summary = runner.join().unwrap().unwrap();
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.requests, 1);
    assert_eq!(summary.panicked, 0);
    // What `qld serve` does in `finish_daemon` after the drained run returns.
    let written = engine.save_configured_cache_snapshot().unwrap().unwrap();
    assert_eq!(written, 1);
    drop(engine);
    assert!(
        snapshot.exists(),
        "snapshot must be on disk for the restart"
    );

    // Second daemon: the permuted re-ask is served from the restored cache,
    // and the wire-visible counters prove the hit happened after restart.
    let engine = Arc::new(Engine::new(config_with(snapshot.clone(), 2)));
    assert_eq!(engine.cache_restored(), 1);
    let server = SocketServer::bind(&socket).unwrap();
    let handle = server.shutdown_handle();
    let engine_ref = Arc::clone(&engine);
    let runner = std::thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));

    let hot = ask(&socket, "check 2,3;0,1 1,3;1,2;0,3;0,2 id=hot\n");
    assert_eq!(hot.len(), 1);
    assert!(hot[0].contains("\"dual\":true"), "{}", hot[0]);
    assert!(hot[0].contains("\"cache_hit\":true"), "{}", hot[0]);
    // A second session reads the counters only after the hit was answered
    // (stats snapshots race in-flight requests of the same session).
    let stats = ask(&socket, "stats id=s\n");
    assert_eq!(stats.len(), 1);
    assert!(stats[0].contains("\"kind\":\"stats\""), "{}", stats[0]);
    assert!(stats[0].contains("\"hits\":1"), "{}", stats[0]);
    assert!(stats[0].contains("\"misses\":0"), "{}", stats[0]);
    assert!(stats[0].contains("\"entries\":1"), "{}", stats[0]);

    handle.shutdown();
    runner.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&snapshot);
}
