//! Integration tests for the streaming job pipeline (wire protocol v2):
//! chunk/done framing over the socket transport, cooperative cancellation
//! (wire `cancel id=N`, vanished sessions), per-session quotas, and the
//! property that a streamed enumeration reassembles into exactly the
//! one-shot result.

use proptest::prelude::*;
use qld_engine::{
    ChunkPayload, Engine, EngineConfig, Outcome, Request, ServeOptions, SolverKind, SolverPolicy,
    StopReason, StreamEvent, StreamItem, StreamRunOptions,
};
use qld_hypergraph::{generators, Hypergraph, VertexSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A policy that sleeps before every duality call, making jobs reliably slow
/// enough to cancel (or abandon) mid-run without depending on instance sizes.
struct SleepyPolicy(Duration);

impl SolverPolicy for SleepyPolicy {
    fn choose(&self, _g: &Hypergraph, _h: &Hypergraph) -> SolverKind {
        std::thread::sleep(self.0);
        SolverKind::BmTree
    }
    fn name(&self) -> &'static str {
        "sleepy"
    }
}

fn sleepy_engine(workers: usize, per_call: Duration) -> Engine {
    Engine::new(EngineConfig {
        workers,
        policy: Arc::new(SleepyPolicy(per_call)),
        ..EngineConfig::default()
    })
}

/// Collects a stream into (item chunks, progress chunk count, done response).
fn drain(
    handle: &qld_engine::StreamHandle,
    timeout: Duration,
) -> (Vec<StreamItem>, usize, qld_engine::Response) {
    let deadline = Instant::now() + timeout;
    let mut items = Vec::new();
    let mut progress = 0usize;
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .expect("stream did not finish within the bound");
        match handle.next_event_timeout(remaining) {
            Some(StreamEvent::Chunk(frame)) => match frame.payload {
                ChunkPayload::Item(item) => items.push(item),
                ChunkPayload::Progress(_) => progress += 1,
            },
            Some(StreamEvent::Done(response)) => return (items, progress, response),
            None => panic!("stream ended (or timed out) without a done frame"),
        }
    }
}

#[test]
fn streamed_enumeration_reassembles_into_the_one_shot_result() {
    let engine = Engine::with_defaults();
    let li = generators::matching_instance(5); // 32 minimal transversals
    let request = Request::EnumerateTransversals {
        g: li.g.clone(),
        limit: None,
    };
    // Stream first (fresh execution — progress checkpoints come from the
    // live loop; cache replays skip them), then compare with the one-shot.
    let handle = engine.run_streaming(request.clone(), StreamRunOptions::default());
    let (items, progress, done) = drain(&handle, Duration::from_secs(120));
    let oneshot = engine.run_one(request);
    assert_eq!(done.chunks, Some(items.len() as u64 + progress as u64));
    assert!(done.halted.is_none());
    let Ok(Outcome::Transversals {
        transversals,
        complete,
    }) = &done.outcome
    else {
        panic!("unexpected outcome {:?}", done.outcome);
    };
    assert!(complete);
    assert_eq!(done.outcome, oneshot.outcome);
    let mut streamed: Vec<Vec<usize>> = items
        .iter()
        .map(|item| match item {
            StreamItem::Transversal(t) => t.clone(),
            other => panic!("unexpected item {other:?}"),
        })
        .collect();
    assert_eq!(streamed.len(), 32);
    streamed.sort();
    let mut expected = transversals.clone();
    expected.sort();
    assert_eq!(streamed, expected);
    // 32 items → two progress checkpoints at the 16-item cadence.
    assert_eq!(progress, 2);
}

#[test]
fn cancelling_a_full_border_mine_stops_within_one_yield_boundary() {
    // Sleepy policy: every identification call takes ≥ 25ms, and the
    // pair-complement relation has 2^6 = 64 minimal infrequent itemsets, so a
    // full run would take ≥ 70 · 25ms ≈ 1.8s.  Cancelling after the first
    // chunk must finish the job at the *next* yield boundary — proven by a
    // wall-clock bound far below the full-run time.
    let engine = sleepy_engine(1, Duration::from_millis(25));
    let relation = pair_complement_relation(6);
    let handle = engine.run_streaming(
        Request::MineBorders {
            relation,
            threshold: 0,
            minimal_infrequent: Hypergraph::new(12),
            maximal_frequent: Hypergraph::new(12),
        },
        StreamRunOptions::default(),
    );
    // Wait for the first border advancement, then cancel.
    let first = handle
        .next_event_timeout(Duration::from_secs(60))
        .expect("first frame");
    assert!(matches!(first, StreamEvent::Chunk(_)));
    let cancelled_at = Instant::now();
    handle.cancel_token().cancel();
    let (items, _progress, done) = drain(&handle, Duration::from_secs(10));
    // One yield boundary: at most one more item may slip out between the
    // cancel and the job's next check.
    assert!(
        items.len() <= 2,
        "cancel took {} further items",
        items.len()
    );
    assert!(
        cancelled_at.elapsed() < Duration::from_secs(5),
        "cancel→done took {:?}",
        cancelled_at.elapsed()
    );
    assert_eq!(done.halted, Some(StopReason::Cancelled));
    let Ok(Outcome::FullBorders { complete, .. }) = &done.outcome else {
        panic!("unexpected outcome {:?}", done.outcome);
    };
    assert!(!complete);
}

/// The classical border-stress relation: over `2k` items, row `i` is the full
/// universe minus the pair `{2i, 2i+1}`.  At threshold 0 the maximal
/// frequent border is the `k` rows themselves and the minimal infrequent
/// border is the `2^k` transversals of the perfect matching.
fn pair_complement_relation(pairs: usize) -> qld_datamining::BooleanRelation {
    let n = 2 * pairs;
    qld_datamining::BooleanRelation::from_rows(
        n,
        (0..pairs)
            .map(|i| VertexSet::from_indices(n, (0..n).filter(|&v| v != 2 * i && v != 2 * i + 1))),
    )
}

#[test]
fn full_border_mine_agrees_with_dualize_and_advance() {
    let engine = Engine::with_defaults();
    let relation = qld_datamining::generators::random_relation(7, 18, 0.5, 41);
    let z = 4;
    let exact = qld_datamining::borders_exact(&relation, z);
    let response = engine.run_one(Request::MineBorders {
        relation: relation.clone(),
        threshold: z,
        minimal_infrequent: Hypergraph::new(7),
        maximal_frequent: Hypergraph::new(7),
    });
    let Ok(Outcome::FullBorders {
        maximal_frequent,
        minimal_infrequent,
        identification_calls,
        complete,
    }) = &response.outcome
    else {
        panic!("unexpected outcome {:?}", response.outcome);
    };
    assert!(complete);
    let expected_max: Vec<Vec<usize>> = exact
        .maximal_frequent
        .canonicalized()
        .edges()
        .iter()
        .map(|e| e.to_indices())
        .collect();
    let expected_min: Vec<Vec<usize>> = exact
        .minimal_infrequent
        .canonicalized()
        .edges()
        .iter()
        .map(|e| e.to_indices())
        .collect();
    assert_eq!(maximal_frequent, &expected_max);
    assert_eq!(minimal_infrequent, &expected_min);
    assert_eq!(
        *identification_calls,
        (expected_max.len() + expected_min.len()) as u64 + 1
    );
}

#[test]
fn streamed_cache_hits_replay_the_same_chunks() {
    let engine = Engine::with_defaults();
    let li = generators::matching_instance(3);
    let request = Request::EnumerateTransversals {
        g: li.g.clone(),
        limit: None,
    };
    let first = engine.run_streaming(request.clone(), StreamRunOptions::default());
    let (items_fresh, _, done_fresh) = drain(&first, Duration::from_secs(60));
    assert!(!done_fresh.stats.cache_hit);
    let second = engine.run_streaming(request, StreamRunOptions::default());
    let (items_hit, _, done_hit) = drain(&second, Duration::from_secs(60));
    assert!(done_hit.stats.cache_hit, "second stream must hit the cache");
    assert_eq!(done_fresh.outcome, done_hit.outcome);
    let mut fresh = items_fresh;
    let mut hit = items_hit;
    fresh.sort_by_key(|i| format!("{i:?}"));
    hit.sort_by_key(|i| format!("{i:?}"));
    assert_eq!(fresh, hit);
}

#[test]
fn max_items_quota_truncates_a_session_request() {
    let engine = Engine::with_defaults();
    let input = "enumerate 0,1;2,3;4,5 stream=1 id=q\n";
    let mut out = Vec::new();
    let options = ServeOptions {
        max_items: Some(2),
        ..ServeOptions::default()
    };
    let summary = engine
        .serve_with(input.as_bytes(), &mut out, &options)
        .unwrap();
    assert_eq!(summary.requests, 1);
    assert_eq!(summary.errors, 0);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let chunks: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"frame\":\"chunk\""))
        .collect();
    assert_eq!(chunks.len(), 2, "{text}");
    let done = lines
        .iter()
        .find(|l| l.contains("\"frame\":\"done\""))
        .expect("done frame");
    assert!(done.contains("\"halted\":\"max-items\""), "{done}");
    assert!(done.contains("\"complete\":false"), "{done}");
    assert!(done.contains("\"count\":2"), "{done}");
}

#[test]
fn max_inflight_quota_rejects_at_admission() {
    // One worker, slow calls: the first request is still running when the
    // second is admitted, so a quota of 1 must reject it with code `quota`.
    let engine = sleepy_engine(1, Duration::from_millis(20));
    let input = "enumerate 0,1;2,3;4,5 id=slow\ncheck 0,1 0;1 id=rejected\n";
    let mut out = Vec::new();
    let options = ServeOptions {
        max_inflight: Some(1),
        ..ServeOptions::default()
    };
    let summary = engine
        .serve_with(input.as_bytes(), &mut out, &options)
        .unwrap();
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.errors, 1);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("\"client_id\":\"slow\""), "{text}");
    let rejected = text
        .lines()
        .find(|l| l.contains("\"client_id\":\"rejected\""))
        .expect("rejected response");
    assert!(rejected.contains("\"code\":\"quota\""), "{rejected}");
    // The slow request itself still completed normally.
    let slow = text
        .lines()
        .find(|l| l.contains("\"client_id\":\"slow\""))
        .unwrap();
    assert!(slow.contains("\"ok\":true"), "{slow}");
}

#[test]
fn item_less_streamed_kinds_still_emit_a_done_frame() {
    // docs/WIRE.md: `stream=` is valid on every kind; kinds that yield no
    // items answer with zero chunks and a `done` frame a frame-reading
    // client can recognize as terminal.
    let engine = Engine::with_defaults();
    let input = "check 0,1 0;1 stream=1 id=c\nstats stream=1 id=s\ncancel id=99 stream=1\n";
    let mut out = Vec::new();
    let summary = engine
        .serve_with(input.as_bytes(), &mut out, &ServeOptions::default())
        .unwrap();
    assert_eq!(summary.requests, 3);
    let text = String::from_utf8(out).unwrap();
    assert!(!text.contains("\"frame\":\"chunk\""), "{text}");
    for line in text.lines() {
        assert!(line.contains("\"frame\":\"done\""), "{line}");
        assert!(line.contains("\"chunks\":0"), "{line}");
    }
}

#[test]
fn max_items_zero_only_gates_item_yielding_requests() {
    let engine = Engine::with_defaults();
    let input = "check 0,1 0;1 id=c\nkeys 1,2;1,3 id=k\nenumerate 0,1;2,3 id=e\n";
    let mut out = Vec::new();
    let options = ServeOptions {
        max_items: Some(0),
        ..ServeOptions::default()
    };
    let summary = engine
        .serve_with(input.as_bytes(), &mut out, &options)
        .unwrap();
    assert_eq!(summary.requests, 3);
    assert_eq!(summary.errors, 0);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // Item-less kinds run to completion under any quota…
    assert!(lines[0].contains("\"dual\":true"), "{}", lines[0]);
    assert!(lines[1].contains("\"kind\":\"keys\""), "{}", lines[1]);
    assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
    // …while the enumeration stops before its first item.
    assert!(
        lines[2].contains("\"halted\":\"max-items\""),
        "{}",
        lines[2]
    );
    assert!(lines[2].contains("\"count\":0"), "{}", lines[2]);
}

#[test]
fn cancel_of_an_unknown_target_reports_cancelled_false() {
    let engine = Engine::with_defaults();
    let input = "cancel id=42\ncheck 0,1 0;1 id=after\n";
    let mut out = Vec::new();
    let summary = engine
        .serve_with(input.as_bytes(), &mut out, &ServeOptions::default())
        .unwrap();
    assert_eq!(summary.requests, 2);
    assert_eq!(summary.errors, 0);
    let text = String::from_utf8(out).unwrap();
    let cancel = text.lines().next().unwrap();
    assert!(
        cancel.contains("\"kind\":\"cancel\",\"target\":42,\"cancelled\":false"),
        "{cancel}"
    );
    assert!(text.contains("\"client_id\":\"after\""), "{text}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A streamed `EnumerateTransversals` reassembled from its chunks equals
    /// the one-shot result — same set of transversals, every one of them a
    /// minimal transversal of the (minimized) input — across random
    /// hypergraphs and both solvers.
    #[test]
    fn streamed_enumeration_equals_one_shot_across_solvers(
        edges in prop::collection::vec(prop::collection::vec(0usize..6, 1usize..=6), 1usize..=5),
    ) {
        let g = Hypergraph::from_edges(
            6,
            edges.into_iter().map(|e| VertexSet::from_indices(6, e)),
        );
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        for solver in [SolverKind::BmTree, SolverKind::QuadChain] {
            let request = Request::EnumerateTransversals { g: g.clone(), limit: None };
            let oneshot = engine.run_one(request.clone());
            let handle = engine.run_streaming(
                request,
                StreamRunOptions { solver: Some(solver), ..StreamRunOptions::default() },
            );
            let (items, _, done) = drain(&handle, Duration::from_secs(120));
            // The engine caches per solver; compare outcomes, not stats.
            let Ok(Outcome::Transversals { transversals, complete }) = &done.outcome else {
                panic!("unexpected outcome {:?}", done.outcome);
            };
            prop_assert!(*complete, "{solver:?}");
            let Ok(Outcome::Transversals { transversals: expected, .. }) = &oneshot.outcome else {
                panic!("unexpected one-shot outcome {:?}", oneshot.outcome);
            };
            let mut streamed: Vec<Vec<usize>> = items
                .iter()
                .map(|item| match item {
                    StreamItem::Transversal(t) => t.clone(),
                    other => panic!("unexpected item {other:?}"),
                })
                .collect();
            prop_assert_eq!(streamed.len(), expected.len());
            streamed.sort();
            let mut terminal = transversals.clone();
            terminal.sort();
            let mut expected = expected.clone();
            expected.sort();
            prop_assert_eq!(&streamed, &expected);
            prop_assert_eq!(&streamed, &terminal);
            // Minimality is preserved item by item.
            let minimized = g.minimize();
            for t in &streamed {
                let set = VertexSet::from_indices(minimized.num_vertices(), t.clone());
                prop_assert!(
                    minimized.is_minimal_transversal(&set),
                    "{t:?} is not a minimal transversal ({solver:?})"
                );
            }
        }
    }
}

#[cfg(unix)]
mod socket {
    use super::*;
    use qld_engine::SocketServer;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;

    fn temp_socket_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qld-stream-{}-{}.sock", tag, std::process::id()))
    }

    fn spawn_server(
        tag: &str,
        engine: &Arc<Engine>,
    ) -> (
        PathBuf,
        qld_engine::ShutdownHandle,
        std::thread::JoinHandle<std::io::Result<qld_engine::TransportSummary>>,
    ) {
        let path = temp_socket_path(tag);
        let _ = std::fs::remove_file(&path);
        let server = SocketServer::bind(&path).unwrap();
        let handle = server.shutdown_handle();
        let engine_ref = Arc::clone(engine);
        let runner = std::thread::spawn(move || server.run(&engine_ref, ServeOptions::default()));
        (path, handle, runner)
    }

    #[test]
    fn streamed_enumerate_emits_chunk_frames_before_done() {
        let engine = Arc::new(Engine::with_defaults());
        let (path, shutdown, runner) = spawn_server("enum", &engine);

        let mut stream = UnixStream::connect(&path).unwrap();
        // tr({01, 23}) has four minimal transversals (≥ 2, the acceptance
        // bar), so the stream must carry ≥ 2 chunk frames before done.
        stream
            .write_all(b"enumerate 0,1;2,3 stream=1 id=s0\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
        let chunk_count = lines
            .iter()
            .filter(|l| l.contains("\"frame\":\"chunk\""))
            .count();
        assert_eq!(chunk_count, 4, "{lines:?}");
        // Chunk frames carry the correlation token and per-request sequence
        // numbers starting at 0.
        assert!(lines[0].contains("\"client_id\":\"s0\""), "{}", lines[0]);
        assert!(lines[0].contains("\"seq\":0"), "{}", lines[0]);
        assert!(lines[1].contains("\"seq\":1"), "{}", lines[1]);
        let done = lines.last().unwrap();
        assert!(done.contains("\"frame\":\"done\""), "{done}");
        assert!(done.contains("\"chunks\":4"), "{done}");
        assert!(done.contains("\"complete\":true"), "{done}");
        assert!(done.contains("\"count\":4"), "{done}");
        // Every frame of the stream answers request id 0.
        for line in &lines {
            assert!(line.starts_with("{\"id\":0,"), "{line}");
        }

        shutdown.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.requests, 1, "chunks must not count as requests");
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn wire_cancel_stops_an_inflight_stream_and_the_daemon_stays_healthy() {
        let engine = Arc::new(sleepy_engine(2, Duration::from_millis(25)));
        let (path, shutdown, runner) = spawn_server("cancel", &engine);

        let mut stream = UnixStream::connect(&path).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // A full-border mine whose complete run would take ≥ 70 slow calls.
        let rel = "n=12:2,3,4,5,6,7,8,9,10,11;0,1,4,5,6,7,8,9,10,11;\
                   0,1,2,3,6,7,8,9,10,11;0,1,2,3,4,5,8,9,10,11;\
                   0,1,2,3,4,5,6,7,10,11;0,1,2,3,4,5,6,7,8,9";
        writeln!(stream, "mine {rel} z=0 full=true stream=1 id=big").unwrap();
        // Wait for the first chunk, then cancel the job mid-stream.
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"frame\":\"chunk\""), "{line}");
        let cancelled_at = Instant::now();
        writeln!(stream, "cancel id=0").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut saw_done = false;
        let mut saw_cancel_ack = false;
        for line in reader.lines() {
            let line = line.unwrap();
            if line.contains("\"frame\":\"done\"") {
                assert!(line.contains("\"halted\":\"cancelled\""), "{line}");
                assert!(line.contains("\"complete\":false"), "{line}");
                saw_done = true;
            }
            if line.contains("\"kind\":\"cancel\"") {
                assert!(line.contains("\"target\":0,\"cancelled\":true"), "{line}");
                saw_cancel_ack = true;
            }
        }
        assert!(saw_done && saw_cancel_ack);
        assert!(
            cancelled_at.elapsed() < Duration::from_secs(10),
            "cancel→drain took {:?}",
            cancelled_at.elapsed()
        );

        // The daemon is still healthy: a fresh connection gets stats + an
        // answer promptly.
        let mut probe = UnixStream::connect(&path).unwrap();
        probe.write_all(b"stats id=alive\n").unwrap();
        probe.shutdown(std::net::Shutdown::Write).unwrap();
        let stats_line = BufReader::new(probe).lines().next().unwrap().unwrap();
        assert!(stats_line.contains("\"kind\":\"stats\""), "{stats_line}");
        assert!(stats_line.contains("\"uptime_ms\""), "{stats_line}");

        shutdown.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.errors, 0);
        // mine + cancel + stats
        assert_eq!(summary.requests, 3);
    }

    /// Cancel edge cases keep stable, documented response shapes: cancelling
    /// an already-completed request, cancelling the same target twice,
    /// cancelling a never-assigned id, and cancelling a control line (a
    /// previous cancel) all answer `cancelled:false` — never an error, never
    /// silence.
    #[test]
    fn cancel_edge_cases_answer_with_stable_shapes() {
        let engine = Arc::new(Engine::with_defaults());
        let (path, shutdown, runner) = spawn_server("cancel-edges", &engine);

        let mut stream = UnixStream::connect(&path).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        writeln!(stream, "check 0,1 0;1 id=done").unwrap();
        // Wait for request 0 to complete before aiming cancels at it.
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(first.contains("\"client_id\":\"done\""), "{first}");
        assert!(first.contains("\"ok\":true"), "{first}");

        writeln!(stream, "cancel id=0").unwrap(); // already completed
        writeln!(stream, "cancel id=0").unwrap(); // duplicate of the above
        writeln!(stream, "cancel id=777").unwrap(); // never assigned
        writeln!(stream, "cancel id=1").unwrap(); // targets a cancel, not a job
        stream.shutdown(std::net::Shutdown::Write).unwrap();

        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 4, "{lines:#?}");
        for (line, (seq, target)) in lines.iter().zip([(1, 0), (2, 0), (3, 777), (4, 1)]) {
            assert!(line.starts_with(&format!("{{\"id\":{seq},")), "{line}");
            assert!(line.contains("\"ok\":true"), "{line}");
            assert!(line.contains("\"kind\":\"cancel\""), "{line}");
            assert!(
                line.contains(&format!("\"target\":{target},\"cancelled\":false")),
                "{line}"
            );
        }

        shutdown.shutdown();
        let summary = runner.join().unwrap().unwrap();
        // check + four cancels; a no-op cancel is not an error.
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn disconnected_session_drops_its_queued_jobs() {
        // Regression: a session that disconnects mid-batch used to leave its
        // queued jobs running to completion.  Completed jobs are cached, so
        // the cache entry count tells whether the abandoned jobs ran: with
        // the drop-on-disconnect path, almost none of the eight distinct
        // slow requests may finish.
        let engine = Arc::new(sleepy_engine(1, Duration::from_millis(15)));
        let (path, shutdown, runner) = spawn_server("disco", &engine);

        {
            let mut stream = UnixStream::connect(&path).unwrap();
            for limit in 1..=8 {
                // Distinct limits → distinct cache keys.
                writeln!(
                    stream,
                    "enumerate 0,1;2,3;4,5;6,7 stream=1 limit={limit} id=gone-{limit}"
                )
                .unwrap();
            }
            // Full close without reading anything: the session's next write
            // fails, which must cancel everything still in flight.
        }

        // A fresh client gets its (slow-policy: one call ≈ 15ms) answer even
        // though eight multi-call jobs were just abandoned ahead of it on a
        // single-worker pool.
        let started = Instant::now();
        let mut probe = UnixStream::connect(&path).unwrap();
        probe.write_all(b"check 0,1 0;1 id=probe\n").unwrap();
        probe.shutdown(std::net::Shutdown::Write).unwrap();
        let line = BufReader::new(probe).lines().next().unwrap().unwrap();
        assert!(line.contains("\"client_id\":\"probe\""), "{line}");
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "probe took {:?}",
            started.elapsed()
        );

        // Give any stragglers a moment, then count what actually completed:
        // the probe's entry plus at most a couple of slow jobs that finished
        // before the disconnect was observed — far below all eight.
        std::thread::sleep(Duration::from_millis(300));
        let entries = engine.cache_stats().entries;
        assert!(
            entries <= 3,
            "queued jobs of a dead session ran to completion ({entries} cache entries)"
        );

        shutdown.shutdown();
        let _ = runner.join().unwrap();
    }
}
