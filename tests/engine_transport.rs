//! Integration tests for the daemon surface: the Unix-socket and TCP
//! transports with concurrent clients, out-of-order (`order=arrival`)
//! streaming, and the per-request `solver=` override on the wire.

use qld_engine::{Engine, EngineConfig, OrderMode, ServeOptions, SolverKind, SolverPolicy};
use qld_hypergraph::Hypergraph;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// An engine with `workers` pool threads and the default policy.
fn engine(workers: usize) -> Engine {
    Engine::new(EngineConfig {
        workers,
        ..EngineConfig::default()
    })
}

#[cfg(unix)]
mod socket {
    use super::*;
    use qld_engine::SocketServer;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;

    fn temp_socket_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qld-test-{}-{}.sock", tag, std::process::id()))
    }

    /// One client session: connect, send `lines`, close the write side, read
    /// every response line until EOF.
    fn client_session(path: &PathBuf, lines: &[String]) -> Vec<String> {
        let mut stream = UnixStream::connect(path).unwrap();
        for line in lines {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
    }

    #[test]
    fn two_concurrent_clients_get_their_own_ordered_sessions() {
        let path = temp_socket_path("two-clients");
        let _ = std::fs::remove_file(&path);
        let eng = Arc::new(engine(4));
        let server = SocketServer::bind(&path).unwrap();
        let handle = server.shutdown_handle();
        let eng_ref = Arc::clone(&eng);
        let runner = thread::spawn(move || server.run(&eng_ref, ServeOptions::default()));

        const PER_CLIENT: usize = 20;
        let mut clients = Vec::new();
        for name in ["alice", "bob"] {
            let path = path.clone();
            clients.push(thread::spawn(move || {
                let lines: Vec<String> = (0..PER_CLIENT)
                    .map(|i| {
                        if i % 2 == 0 {
                            format!("check 0,1;2,3 0,2;0,3;1,2;1,3 id={name}-{i}")
                        } else {
                            format!("keys 1,2;1,3 id={name}-{i}")
                        }
                    })
                    .collect();
                (name, client_session(&path, &lines))
            }));
        }
        for client in clients {
            let (name, responses) = client.join().unwrap();
            assert_eq!(responses.len(), PER_CLIENT, "{name}");
            for (i, line) in responses.iter().enumerate() {
                // Per-connection request IDs: every session counts from 0, in
                // input order, and the correlation token is echoed verbatim.
                assert!(
                    line.starts_with(&format!("{{\"id\":{i},\"client_id\":\"{name}-{i}\"")),
                    "{name} line {i}: {line}"
                );
                assert!(line.contains("\"ok\":true"), "{name} line {i}: {line}");
                if i % 2 == 0 {
                    assert!(line.contains("\"dual\":true"), "{name} line {i}: {line}");
                } else {
                    assert!(
                        line.contains("\"kind\":\"keys\""),
                        "{name} line {i}: {line}"
                    );
                }
            }
        }
        handle.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.connections, 2);
        assert_eq!(summary.requests, 2 * PER_CLIENT as u64);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn malformed_frames_fail_cleanly_without_killing_the_session() {
        let path = temp_socket_path("malformed");
        let _ = std::fs::remove_file(&path);
        let eng = Arc::new(engine(2));
        let server = SocketServer::bind(&path).unwrap();
        let handle = server.shutdown_handle();
        let eng_ref = Arc::clone(&eng);
        let runner = thread::spawn(move || server.run(&eng_ref, ServeOptions::default()));

        let responses = client_session(
            &path,
            &[
                "check 0,1 not-a-hypergraph-(".to_string(),
                "frobnicate everything".to_string(),
                "check 0,1;2,3 0,2;0,3;1,2;1,3".to_string(),
            ],
        );
        assert_eq!(responses.len(), 3);
        assert!(
            responses[0].contains("\"ok\":false") && responses[0].contains("\"code\":\"parse\"")
        );
        assert!(responses[1].contains("\"code\":\"parse\""));
        assert!(
            responses[2].contains("\"dual\":true"),
            "session must survive malformed frames: {}",
            responses[2]
        );
        handle.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.errors, 2);
    }
}

mod tcp {
    use super::*;
    use qld_engine::TcpServer;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{SocketAddr, TcpStream};

    /// One client session over TCP: connect, send `lines`, close the write
    /// side, read every response line until EOF.
    fn client_session(addr: SocketAddr, lines: &[String]) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        for line in lines {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
    }

    #[test]
    fn tcp_sessions_mirror_socket_sessions() {
        let eng = Arc::new(engine(4));
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let eng_ref = Arc::clone(&eng);
        let runner = thread::spawn(move || server.run(&eng_ref, ServeOptions::default()));

        const PER_CLIENT: usize = 10;
        let mut clients = Vec::new();
        for name in ["carol", "dave"] {
            clients.push(thread::spawn(move || {
                let lines: Vec<String> = (0..PER_CLIENT)
                    .map(|i| format!("check 0,1;2,3 0,2;0,3;1,2;1,3 id={name}-{i}"))
                    .collect();
                (name, client_session(addr, &lines))
            }));
        }
        for client in clients {
            let (name, responses) = client.join().unwrap();
            assert_eq!(responses.len(), PER_CLIENT, "{name}");
            for (i, line) in responses.iter().enumerate() {
                assert!(
                    line.starts_with(&format!("{{\"id\":{i},\"client_id\":\"{name}-{i}\"")),
                    "{name} line {i}: {line}"
                );
                assert!(line.contains("\"dual\":true"), "{name} line {i}: {line}");
            }
        }
        handle.shutdown();
        let summary = runner.join().unwrap().unwrap();
        assert_eq!(summary.connections, 2);
        assert_eq!(summary.requests, 2 * PER_CLIENT as u64);
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn tcp_arrival_order_override_works_on_the_wire() {
        let eng = Arc::new(engine(2));
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let eng_ref = Arc::clone(&eng);
        let runner = thread::spawn(move || {
            server.run(
                &eng_ref,
                ServeOptions {
                    order: OrderMode::Arrival,
                    ..ServeOptions::default()
                },
            )
        });
        let responses = client_session(
            addr,
            &["check 0,1 0;1 id=a".to_string(), "stats id=b".to_string()],
        );
        assert_eq!(responses.len(), 2);
        assert!(responses.iter().any(|l| l.contains("\"client_id\":\"a\"")));
        assert!(responses.iter().any(|l| l.contains("\"kind\":\"stats\"")));
        handle.shutdown();
        runner.join().unwrap().unwrap();
    }
}

/// A routing policy that sleeps on large instances, making "slow request"
/// deterministic for the ordering tests, then delegates to the tree solver.
struct SleepOnBigPolicy {
    /// Instances with combined volume at least this sleep before solving.
    volume_threshold: usize,
    delay: Duration,
}

impl SolverPolicy for SleepOnBigPolicy {
    fn choose(&self, g: &Hypergraph, h: &Hypergraph) -> SolverKind {
        if g.volume() + h.volume() >= self.volume_threshold {
            thread::sleep(self.delay);
        }
        SolverKind::BmTree
    }

    fn name(&self) -> &'static str {
        "sleep-on-big"
    }
}

/// The instance pair used by the ordering tests: request 0 is slow (big
/// matching instance trips the sleep), request 1 is fast.
fn slow_then_fast_input() -> String {
    // matching(4): 8 vertices, volume 8 per side — trips a threshold of 10.
    let big_g = "0,1;2,3;4,5;6,7";
    let big_h = "0,2,4,6;0,2,4,7;0,2,5,6;0,2,5,7;0,3,4,6;0,3,4,7;0,3,5,6;0,3,5,7;\
                 1,2,4,6;1,2,4,7;1,2,5,6;1,2,5,7;1,3,4,6;1,3,4,7;1,3,5,6;1,3,5,7"
        .replace(' ', "");
    format!("check {big_g} {big_h} id=slow\ncheck 0,1 0;1 id=fast\n")
}

fn sleepy_engine() -> Engine {
    Engine::new(EngineConfig {
        workers: 2,
        cache: false,
        policy: Arc::new(SleepOnBigPolicy {
            volume_threshold: 10,
            delay: Duration::from_millis(200),
        }),
        ..EngineConfig::default()
    })
}

#[test]
fn input_order_holds_fast_responses_behind_slow_ones() {
    let mut out = Vec::new();
    let summary = sleepy_engine()
        .serve_with(
            slow_then_fast_input().as_bytes(),
            &mut out,
            &ServeOptions {
                order: OrderMode::Input,
                ..ServeOptions::default()
            },
        )
        .unwrap();
    assert_eq!(summary.requests, 2);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].contains("\"client_id\":\"slow\""), "{}", lines[0]);
    assert!(lines[1].contains("\"client_id\":\"fast\""), "{}", lines[1]);
}

#[test]
fn arrival_order_streams_fast_responses_past_slow_ones() {
    let mut out = Vec::new();
    let summary = sleepy_engine()
        .serve_with(
            slow_then_fast_input().as_bytes(),
            &mut out,
            &ServeOptions {
                order: OrderMode::Arrival,
                ..ServeOptions::default()
            },
        )
        .unwrap();
    assert_eq!(summary.requests, 2);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // The fast request (submitted second) must not be head-of-line-blocked.
    assert!(
        lines[0].contains("\"client_id\":\"fast\""),
        "arrival order did not stream the fast response first: {text}"
    );
    assert!(lines[1].contains("\"client_id\":\"slow\""), "{}", lines[1]);
    // Both answered correctly despite the reordering.
    for line in &lines {
        assert!(line.contains("\"dual\":true"), "{line}");
    }
}

#[test]
fn per_request_order_override_excludes_requests_from_the_ordered_stream() {
    // Session default is input order, but the *slow* request opts into
    // arrival emission, so the fast (ordered) response is written first and
    // the ordered stream is never blocked.
    let input = slow_then_fast_input().replace(" id=slow", " id=slow order=arrival");
    let mut out = Vec::new();
    sleepy_engine()
        .serve_with(
            input.as_bytes(),
            &mut out,
            &ServeOptions {
                order: OrderMode::Input,
                ..ServeOptions::default()
            },
        )
        .unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].contains("\"client_id\":\"fast\""),
        "order=arrival override was not honored: {text}"
    );
    assert!(lines[1].contains("\"client_id\":\"slow\""), "{}", lines[1]);
}

#[test]
fn per_request_solver_override_forces_the_named_solver() {
    let eng = engine(2);
    let input = "\
check 0,1;2,3 0,2;0,3;1,2;1,3 solver=quadlog-recompute
check 0,1;2,3 0,2;0,3;1,2;1,3 solver=tree
check 0,1;2,3 0,2;0,3;1,2;1,3
";
    let mut out = Vec::new();
    let summary = eng.serve(input.as_bytes(), &mut out).unwrap();
    assert_eq!(summary.errors, 0);
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].contains("\"solver\":\"quadlog-recompute\""),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"solver\":\"bm-tree\""), "{}", lines[1]);
    // The unforced request routes through the default size-threshold policy
    // (this instance is small, so it also lands on the tree solver) — but it
    // must be a distinct cache entry from the overridden ones.
    assert!(lines[2].contains("\"solver\":\"bm-tree\""), "{}", lines[2]);
    let entries = eng.cache_stats().entries;
    assert_eq!(
        entries, 3,
        "solver overrides must not share cache entries with routed requests"
    );
}

/// The readiness-loop (socket) sessions route sub-threshold checks inline
/// through [`qld_engine::ExecRoute::Local`], exactly like the threaded
/// feeder: same answers, nothing cached.
#[cfg(unix)]
mod socket_local_route {
    use super::*;
    use qld_engine::SocketServer;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    #[test]
    fn socket_session_answers_local_checks_inline() {
        let path =
            std::env::temp_dir().join(format!("qld-test-local-route-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let eng = Arc::new(Engine::new(EngineConfig {
            workers: 2,
            local_threshold: usize::MAX,
            ..EngineConfig::default()
        }));
        let server = SocketServer::bind(&path).unwrap();
        let handle = server.shutdown_handle();
        let eng_ref = Arc::clone(&eng);
        let runner = thread::spawn(move || server.run(&eng_ref, ServeOptions::default()));

        let mut stream = UnixStream::connect(&path).unwrap();
        stream
            .write_all(
                b"check 0,1;2,3 0,2;0,3;1,2;1,3 id=local\ncheck 0,1;2,3 0,2;0,3;1,2 id=nondual\n",
            )
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains(r#""client_id":"local""#));
        assert!(lines[0].contains(r#""dual":true"#));
        assert!(lines[1].contains(r#""dual":false"#));
        // Inline answers never populate the engine cache.
        assert_eq!(eng.cache_stats().entries, 0);

        handle.shutdown();
        let _ = UnixStream::connect(&path); // wake the accept loop
        runner.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
