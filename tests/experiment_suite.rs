//! Cross-crate integration: the experiment harness itself.  Every experiment table
//! builds, is non-empty, and all of its correctness cells report success — this is the
//! automated counterpart of the `EXPERIMENTS.md` record.

use qld_harness::experiments::{self, all_correctness_cells_pass, ALL_EXPERIMENTS};
use qld_harness::figure::{figure1_ascii, figure1_dot};

#[test]
fn every_experiment_produces_a_consistent_table() {
    for id in ALL_EXPERIMENTS {
        let table = experiments::run(id).unwrap_or_else(|| panic!("experiment {id} missing"));
        assert!(!table.is_empty(), "{id} produced no rows");
        assert!(
            all_correctness_cells_pass(&table),
            "{id} has failing correctness cells:\n{}",
            table.render()
        );
        // Rendering round-trips without panicking and includes every row.
        let text = table.render();
        assert!(text.lines().count() >= table.len() + 3);
        let tsv = table.to_tsv();
        assert_eq!(tsv.lines().count(), table.len() + 1);
    }
}

#[test]
fn figure1_renders_both_formats() {
    let ascii = figure1_ascii();
    assert!(ascii.contains("DSPACE[log²n]"));
    assert!(ascii.contains("GC(log²n, [[LOGSPACE_pol]]^log)"));
    let dot = figure1_dot();
    assert!(dot.contains("digraph figure1"));
}

#[test]
fn experiment_workloads_are_labelled_correctly() {
    // The E4 comparison relies on instance labels; cross-check a sample of them against
    // the brute-force assignment solver.
    for li in qld_harness::workloads::dual_instances()
        .into_iter()
        .chain(qld_harness::workloads::non_dual_instances())
        .filter(|li| li.g.num_vertices().max(li.h.num_vertices()) <= 12)
    {
        assert!(
            experiments::brute_force_agrees(&li),
            "label of {} is wrong",
            li.name
        );
    }
}
