//! End-to-end tests of the `qld front` shard-fleet router: consistent-hash
//! cache affinity across real shard processes, byte-compatible streamed chunk
//! relay, cancel forwarding, crash respawn hot from snapshots, and
//! retry-once-on-reroute.
//!
//! The shards are real `qld serve` child processes (the binary built for this
//! test run); the router runs in-process so the tests can reach the fleet's
//! admin surface (`kill_shard`, `rolling_restart`, `wait_available`) directly.
//! The CLI-level behaviours (SIGTERM, SIGUSR1) are exercised by the CI fleet
//! smoke step.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qld_engine::{Engine, EngineConfig, ServeOptions, ShutdownHandle, SocketServer};
use qld_front::{policy_from_name, session_handler, Fleet, FleetConfig, Router};

fn qld_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_qld"))
}

/// A fresh per-test scratch directory (sockets + shard cache snapshots).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qld-front-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An in-process router serving a real shard fleet on a Unix socket.
struct TestFront {
    fleet: Arc<Fleet>,
    router: Arc<Router>,
    socket: PathBuf,
    shutdown: ShutdownHandle,
    runner: Option<std::thread::JoinHandle<std::io::Result<qld_engine::TransportSummary>>>,
    dir: PathBuf,
}

impl TestFront {
    fn start(tag: &str, shards: usize) -> TestFront {
        TestFront::start_with_retry(tag, shards, true)
    }

    fn start_with_retry(tag: &str, shards: usize, retry: bool) -> TestFront {
        TestFront::start_with(tag, shards, retry, None)
    }

    fn start_with(
        tag: &str,
        shards: usize,
        retry: bool,
        user_quota: Option<Arc<qld_engine::UserBuckets>>,
    ) -> TestFront {
        let dir = scratch_dir(tag);
        let mut config = FleetConfig::new(shards, qld_binary(), dir.join("shards"));
        // Fast probes so load/crash detection does not dominate test time.
        config.probe_interval = Duration::from_millis(50);
        config.spec.workers = Some(2);
        let fleet = Fleet::start(config).expect("fleet start");
        let policy = policy_from_name("hash", shards).unwrap();
        let router = Router::with_user_quota(Arc::clone(&fleet), policy, retry, user_quota);
        let socket = dir.join("front.sock");
        let server = SocketServer::bind(&socket).expect("bind front socket");
        let shutdown = server.shutdown_handle();
        let session_router = Arc::clone(&router);
        let runner =
            std::thread::spawn(move || server.run_with(Arc::new(session_handler(session_router))));
        TestFront {
            fleet,
            router,
            socket,
            shutdown,
            runner: Some(runner),
            dir,
        }
    }

    fn connect(&self) -> UnixStream {
        UnixStream::connect(&self.socket).expect("connect to front")
    }

    /// One client session: write everything, half-close, read all responses.
    fn ask(&self, lines: &str) -> Vec<String> {
        let mut stream = self.connect();
        stream.write_all(lines.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        BufReader::new(stream)
            .lines()
            .map(|line| line.unwrap())
            .collect()
    }

    /// Probes shard `index` directly (bypassing the router) for its stats
    /// line — the ground truth for affinity and snapshot-restore assertions.
    fn shard_stats(&self, index: usize) -> String {
        let mut stream = self.fleet.connect(index).expect("connect to shard");
        stream.write_all(b"stats\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    /// Stops the router (collecting its summary), then the fleet.
    fn stop(mut self) -> qld_engine::TransportSummary {
        self.shutdown.shutdown();
        let summary = self
            .runner
            .take()
            .unwrap()
            .join()
            .unwrap()
            .expect("router accept loop");
        self.fleet.shutdown();
        summary
    }
}

impl Drop for TestFront {
    fn drop(&mut self) {
        self.shutdown.shutdown();
        if let Some(runner) = self.runner.take() {
            let _ = runner.join();
        }
        self.fleet.shutdown();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Extracts the unsigned integer following `marker` in a JSON line, e.g.
/// `field_u64(&stats, "\"hits\":")`.
fn field_u64(line: &str, marker: &str) -> u64 {
    let at = line
        .find(marker)
        .unwrap_or_else(|| panic!("no {marker} in {line}"));
    line[at + marker.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// The `n=2p` pair-complement relation whose full border mine needs
/// `2^p + p + 2` identification calls — the knob for "slow enough to cancel
/// or kill mid-flight" (p = 6 runs ≈ 1 s in a debug build).
fn pair_complement_inline(pairs: usize) -> String {
    let n = 2 * pairs;
    let rows: Vec<String> = (0..pairs)
        .map(|i| {
            (0..n)
                .filter(|&v| v != 2 * i && v != 2 * i + 1)
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    format!("n={n}:{}", rows.join(";"))
}

/// Cuts the volatile tail (`,"stats":{...}`, per-run micros and worker ids)
/// off a done/response line so two runs can be compared byte-for-byte.
fn strip_stats(line: &str) -> &str {
    match line.find(",\"stats\":") {
        Some(at) => &line[..at],
        None => line,
    }
}

/// The consistent-hash affinity contract: the same canonical key — even under
/// a permuted re-ask from a different connection — lands on the same shard,
/// so the second ask is a cache hit, and exactly one shard owns the entry.
#[test]
fn permuted_reask_hits_the_same_shards_cache() {
    let front = TestFront::start("affinity", 2);

    let first = front.ask("check 0,1;2,3 0,2;0,3;1,2;1,3 id=warm\n");
    assert_eq!(first.len(), 1);
    assert!(first[0].contains("\"dual\":true"), "{}", first[0]);
    assert!(first[0].contains("\"cache_hit\":false"), "{}", first[0]);
    assert!(first[0].contains("\"client_id\":\"warm\""), "{}", first[0]);

    // Permuted edge order, separate connection: same canonical cache key.
    let second = front.ask("check 2,3;0,1 1,3;1,2;0,3;0,2 id=hot\n");
    assert_eq!(second.len(), 1);
    assert!(second[0].contains("\"dual\":true"), "{}", second[0]);
    assert!(second[0].contains("\"cache_hit\":true"), "{}", second[0]);

    // Ground truth per shard: one shard saw the miss and then the hit, the
    // other saw nothing.
    let per_shard: Vec<(u64, u64)> = (0..2)
        .map(|i| {
            let stats = front.shard_stats(i);
            (
                field_u64(&stats, "\"hits\":"),
                field_u64(&stats, "\"misses\":"),
            )
        })
        .collect();
    let owners: Vec<usize> = (0..2).filter(|&i| per_shard[i].1 > 0).collect();
    assert_eq!(
        owners.len(),
        1,
        "affinity split across shards: {per_shard:?}"
    );
    assert_eq!(
        per_shard[owners[0]],
        (1, 1),
        "owner counters: {per_shard:?}"
    );

    // `stats` through the router stays protocol-shaped and carries the
    // serving-layer gauges.
    let stats = front.ask("stats id=s\n");
    assert_eq!(stats.len(), 1);
    assert!(stats[0].starts_with("{\"id\":0,"), "{}", stats[0]);
    assert!(stats[0].contains("\"client_id\":\"s\""), "{}", stats[0]);
    assert!(stats[0].contains("\"kind\":\"stats\""), "{}", stats[0]);
    assert!(stats[0].contains("\"inflight\":"), "{}", stats[0]);
    assert!(stats[0].contains("\"sessions\":"), "{}", stats[0]);

    let summary = front.stop();
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.requests, 3);
}

/// Protocol transparency: a streamed session through the router produces the
/// same bytes as the engine served directly — chunk frames identical, the
/// done frame identical up to its volatile `stats` object.
#[test]
fn streamed_chunks_relay_byte_identically() {
    let front = TestFront::start("stream", 2);
    let engine = Engine::new(EngineConfig {
        workers: 2,
        ..EngineConfig::default()
    });

    // Each input is its own session on both sides, so the per-session ids
    // line up and cross-request ordering cannot blur the comparison.
    for input in [
        "enumerate 0,1;2,3;4,5 stream=1 id=q\n",
        "mine 0,1;0,1;1,2 z=1 stream=1 id=m\n",
        "check 0,1;2,3 0,2;0,3;1,2;1,3 id=c\n",
        "not a real command id=broken\n",
    ] {
        let via_front = front.ask(input);
        let mut out = Vec::new();
        engine
            .serve_with(input.as_bytes(), &mut out, &ServeOptions::default())
            .unwrap();
        let direct: Vec<String> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();

        assert_eq!(via_front.len(), direct.len(), "front: {via_front:#?}");
        for (routed, reference) in via_front.iter().zip(&direct) {
            if routed.contains("\"frame\":\"chunk\"") {
                assert_eq!(routed, reference);
            } else {
                assert_eq!(strip_stats(routed), strip_stats(reference));
            }
        }
    }

    let summary = front.stop();
    assert_eq!(summary.requests, 4);
}

/// Cancel forwarding: `cancel id=N` reaches the shard that owns request `N`,
/// the stream halts at a yield boundary, and the ack comes back with the
/// router-side id remapped.
#[test]
fn cancel_through_the_router_stops_the_shard_side_job() {
    let front = TestFront::start("cancel", 2);
    let mut stream = front.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let rel = pair_complement_inline(6);
    writeln!(stream, "mine {rel} z=0 full=true stream=1 id=big").unwrap();
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    assert!(first.contains("\"frame\":\"chunk\""), "{first}");
    assert!(first.starts_with("{\"id\":0,"), "{first}");

    writeln!(stream, "cancel id=0").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut saw_done = false;
    let mut saw_ack = false;
    for line in reader.lines() {
        let line = line.unwrap();
        if line.contains("\"frame\":\"done\"") {
            assert!(line.contains("\"halted\":\"cancelled\""), "{line}");
            assert!(line.contains("\"complete\":false"), "{line}");
            saw_done = true;
        }
        if line.contains("\"kind\":\"cancel\"") {
            assert!(line.starts_with("{\"id\":1,"), "{line}");
            assert!(line.contains("\"target\":0"), "{line}");
            assert!(line.contains("\"cancelled\":true"), "{line}");
            saw_ack = true;
        }
    }
    assert!(saw_done, "no done frame after cancel");
    assert!(saw_ack, "no cancel ack");

    // The shard-side job really stopped: the supervisor's load probes go
    // back to zero well before the full mine could have finished.
    let deadline = Instant::now() + Duration::from_secs(5);
    while front.fleet.loads().iter().any(|&l| l > 0) {
        assert!(Instant::now() < deadline, "shard still busy after cancel");
        std::thread::sleep(Duration::from_millis(20));
    }

    let summary = front.stop();
    assert_eq!(summary.errors, 0);
}

/// Crash recovery, hot: a rolling restart snapshots every shard's cache on
/// the way down, so even a later `kill -9` respawns into a shard that
/// answers the warmed key from its restored snapshot.
#[test]
fn killed_shard_respawns_hot_from_its_snapshot() {
    let front = TestFront::start("respawn", 2);

    let warm = front.ask("check 0,1;2,3 0,2;0,3;1,2;1,3 id=warm\n");
    assert!(warm[0].contains("\"cache_hit\":false"), "{}", warm[0]);
    let owner = (0..2)
        .find(|&i| field_u64(&front.shard_stats(i), "\"misses\":") > 0)
        .expect("some shard owns the key");

    // Rolling restart: graceful SIGTERM writes each shard's snapshot, and
    // every shard comes back accepting connections.
    front.fleet.rolling_restart().expect("rolling restart");
    assert!(front.fleet.availability().iter().all(|&up| up));
    let restarted = front.shard_stats(owner);
    assert!(
        restarted.contains("\"cache_restored\":true"),
        "owner restarted cold: {restarted}"
    );

    let hot = front.ask("check 2,3;0,1 1,3;1,2;0,3;0,2 id=hot\n");
    assert!(hot[0].contains("\"cache_hit\":true"), "{}", hot[0]);

    // Crash path: SIGKILL gives the owner no chance to snapshot, but the
    // supervisor respawns it from the file the rolling restart left behind.
    let generation_before = front.fleet.shards()[owner].generation();
    front.fleet.kill_shard(owner).expect("kill shard");
    assert!(
        front.fleet.wait_available(owner, Duration::from_secs(10)),
        "owner was not respawned"
    );
    assert!(front.fleet.shards()[owner].generation() > generation_before);
    assert!(front.fleet.total_respawns() >= 1);

    let after_crash = front.ask("check 0,1;2,3 0,2;0,3;1,2;1,3 id=after-crash\n");
    assert!(
        after_crash[0].contains("\"cache_hit\":true"),
        "respawned shard lost the snapshot: {}",
        after_crash[0]
    );

    let summary = front.stop();
    assert_eq!(summary.errors, 0);
}

/// Retry-once-on-reroute: killing the shard that holds a non-streamed
/// request mid-flight re-dispatches it to the survivor, and the client sees
/// one ordinary successful response.
#[test]
fn request_lost_to_a_dying_shard_is_retried_on_the_survivor() {
    let front = TestFront::start("retry", 2);
    let mut stream = front.connect();
    let reader = BufReader::new(stream.try_clone().unwrap());

    let rel = pair_complement_inline(6);
    writeln!(stream, "mine {rel} z=0 full=true id=lost").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    // Find the busy shard by direct stats probes (tighter than the
    // supervisor's own probe cadence), then SIGKILL it under the request.
    let deadline = Instant::now() + Duration::from_secs(10);
    let owner = loop {
        assert!(Instant::now() < deadline, "request never showed in flight");
        match (0..2).find(|&i| field_u64(&front.shard_stats(i), "\"inflight\":") > 0) {
            Some(busy) => break busy,
            None => std::thread::sleep(Duration::from_millis(2)),
        }
    };
    front.fleet.kill_shard(owner).expect("kill shard");

    let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 1, "{lines:#?}");
    assert!(lines[0].starts_with("{\"id\":0,"), "{}", lines[0]);
    assert!(lines[0].contains("\"client_id\":\"lost\""), "{}", lines[0]);
    assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
    assert!(lines[0].contains("\"kind\":\"mine_full\""), "{}", lines[0]);
    assert!(lines[0].contains("\"complete\":true"), "{}", lines[0]);

    let summary = front.stop();
    assert_eq!(summary.errors, 0);
}

/// The same loss with retry disabled (`--no-retry`): the client gets a
/// truthful `internal` error for the lost request instead of a silent stall.
#[test]
fn without_retry_a_lost_request_reports_a_stable_error() {
    let front = TestFront::start_with_retry("no-retry", 2, false);
    let mut stream = front.connect();
    let reader = BufReader::new(stream.try_clone().unwrap());

    let rel = pair_complement_inline(6);
    writeln!(stream, "mine {rel} z=0 full=true id=doomed").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let owner = loop {
        assert!(Instant::now() < deadline, "request never showed in flight");
        match (0..2).find(|&i| field_u64(&front.shard_stats(i), "\"inflight\":") > 0) {
            Some(busy) => break busy,
            None => std::thread::sleep(Duration::from_millis(2)),
        }
    };
    front.fleet.kill_shard(owner).expect("kill shard");

    let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 1, "{lines:#?}");
    assert!(
        lines[0].contains("\"client_id\":\"doomed\""),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("\"ok\":false"), "{}", lines[0]);
    assert!(lines[0].contains("\"code\":\"internal\""), "{}", lines[0]);
    assert!(lines[0].contains("shard connection lost"), "{}", lines[0]);

    let _ = front.stop();
}

/// A slow consumer through the router: one session starts a streamed
/// enumerate and refuses to read while other sessions keep asking.  The
/// router's per-session relay (and the shard's readiness loop behind it)
/// must keep the fast sessions flowing, and the parked stream must still
/// arrive complete and in order once the client finally drains it.
#[test]
fn slow_consumer_through_the_router_does_not_stall_others() {
    let front = TestFront::start("slow-consumer", 2);

    // 2^6 = 64 transversals: enough chunk frames to park meaningful output
    // behind an unread socket, cheap enough to enumerate in a debug build.
    let mut slow = front.connect();
    writeln!(slow, "enumerate 0,1;2,3;4,5;6,7;8,9;10,11 stream=1 id=slow").unwrap();
    slow.shutdown(std::net::Shutdown::Write).unwrap();
    // Deliberately no reads from `slow` yet.

    let deadline = Instant::now() + Duration::from_secs(10);
    for i in 1..=10 {
        let fast = front.ask(&format!("check 0,{i} 0;{i} id=f{i}\n"));
        assert_eq!(fast.len(), 1, "fast session {i}: {fast:#?}");
        assert!(fast[0].contains("\"ok\":true"), "{}", fast[0]);
        assert!(
            Instant::now() < deadline,
            "fast sessions starved by the slow consumer"
        );
    }

    // Now drain the parked stream: every chunk, contiguous seq, then done.
    let lines: Vec<String> = BufReader::new(slow).lines().map(|l| l.unwrap()).collect();
    let chunks: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"frame\":\"chunk\""))
        .collect();
    for (expect, chunk) in chunks.iter().enumerate() {
        assert!(
            chunk.contains(&format!("\"seq\":{expect},")),
            "chunk out of order: wanted seq {expect} in {chunk}"
        );
    }
    let done = lines.last().expect("done frame");
    assert!(done.contains("\"frame\":\"done\""), "{done}");
    assert!(done.contains("\"complete\":true"), "{done}");
    assert!(done.contains("\"count\":64"), "{done}");
    // The done frame's own chunk tally matches what was relayed: nothing
    // lost, nothing duplicated while the stream sat unread.
    assert_eq!(
        field_u64(done, "\"chunks\":"),
        chunks.len() as u64,
        "{done}"
    );

    let summary = front.stop();
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.requests, 11);
}

/// Per-user fairness at the router: an `auth=`-tagged flood is throttled
/// before it reaches any shard, other users and anonymous sessions are
/// untouched, and every rejection still consumes its client-side `id`.
#[test]
fn auth_flood_is_throttled_at_the_router_without_touching_shards() {
    // Effectively no refill within the test: 2 admissions per user, period.
    let quota = Arc::new(qld_engine::UserBuckets::new(0.000_001, 2.0));
    let front = TestFront::start_with("auth", 2, true, Some(Arc::clone(&quota)));

    // Distinct cache keys per line so "reached a shard" is visible as a
    // cache miss in the fleet-wide counters.
    let mut input = String::new();
    for i in 0..6 {
        let v = i + 1;
        input.push_str(&format!("check 0,{v} 0;{v} auth=alice id=a{i}\n"));
    }
    input.push_str("check 0,7 0;7 auth=bob id=b0\n");
    input.push_str("check 0,8 0;8 id=anon\n");
    let lines = front.ask(&input);
    assert_eq!(lines.len(), 8, "{lines:#?}");

    let find = |tag: &str| -> &String {
        lines
            .iter()
            .find(|l| l.contains(&format!("\"client_id\":\"{tag}\"")))
            .unwrap_or_else(|| panic!("no response tagged {tag}: {lines:#?}"))
    };
    // alice: the burst of 2 admitted, the rest rejected with `quota`.
    let alice_ok = (0..6)
        .filter(|&i| find(&format!("a{i}")).contains("\"ok\":true"))
        .count();
    assert_eq!(alice_ok, 2, "{lines:#?}");
    for i in 0..6 {
        let line = find(&format!("a{i}"));
        if !line.contains("\"ok\":true") {
            assert!(
                line.contains("\"code\":\"quota\"") && line.contains("`alice`"),
                "{line}"
            );
        }
    }
    // bob and the anonymous client are untouched by alice's flood.
    assert!(find("b0").contains("\"ok\":true"), "{}", find("b0"));
    assert!(find("anon").contains("\"ok\":true"), "{}", find("anon"));

    // The throttled lines never reached a shard: across the fleet, only the
    // four admitted queries show up as cache misses.
    let total_misses: u64 = (0..2)
        .map(|i| field_u64(&front.shard_stats(i), "\"misses\":"))
        .sum();
    assert_eq!(total_misses, 4, "throttled requests leaked to a shard");

    let summary = front.stop();
    assert_eq!(summary.requests, 8);
    assert_eq!(summary.errors, 4);
}

/// The least-loaded and sticky policies also serve real traffic end-to-end
/// (their routing logic is unit-tested; this is the wiring check).
#[test]
fn alternate_policies_serve_traffic() {
    for policy_name in ["least-loaded", "sticky"] {
        let dir = scratch_dir(&format!("policy-{policy_name}"));
        let mut config = FleetConfig::new(2, qld_binary(), dir.join("shards"));
        config.probe_interval = Duration::from_millis(50);
        config.spec.workers = Some(1);
        let fleet = Fleet::start(config).expect("fleet start");
        let policy = policy_from_name(policy_name, 2).unwrap();
        let router = Router::new(Arc::clone(&fleet), policy, true);
        let socket = dir.join("front.sock");
        let server = SocketServer::bind(&socket).expect("bind front socket");
        let shutdown = server.shutdown_handle();
        let runner = std::thread::spawn(move || server.run_with(Arc::new(session_handler(router))));

        let mut stream = UnixStream::connect(&socket).unwrap();
        stream
            .write_all(b"check 0,1;2,3 0,2;0,3;1,2;1,3 id=p\nkeys 1,2;1,3 id=k\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 2, "{policy_name}: {lines:#?}");
        assert!(
            lines[0].contains("\"ok\":true"),
            "{policy_name}: {}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"ok\":true"),
            "{policy_name}: {}",
            lines[1]
        );

        shutdown.shutdown();
        runner.join().unwrap().unwrap();
        fleet.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Router-level single-flight: K client sessions stampede the same one-shot
/// key; exactly one forwarded execution reaches a shard, every session gets
/// a byte-identical answer (modulo its own correlation token), and the
/// router's `front` counters are spliced into relayed `stats` lines.
#[test]
fn stampede_across_sessions_reaches_a_shard_exactly_once() {
    const K: usize = 6;
    let front = TestFront::start("stampede", 2);

    // Slow enough (≈1 s in a debug build) that all K dispatches land while
    // the leader's shard is still mining.
    let rel = pair_complement_inline(6);
    let barrier = Arc::new(std::sync::Barrier::new(K));
    let mut sessions = Vec::new();
    for i in 0..K {
        let socket = front.socket.clone();
        let line = format!("mine {rel} z=0 full=true id=s{i}\n");
        let barrier = Arc::clone(&barrier);
        sessions.push(std::thread::spawn(move || {
            let mut stream = UnixStream::connect(&socket).unwrap();
            barrier.wait();
            stream.write_all(line.as_bytes()).unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
            assert_eq!(lines.len(), 1, "session {i}: {lines:#?}");
            (i, lines.into_iter().next().unwrap())
        }));
    }
    let answers: Vec<(usize, String)> = sessions.into_iter().map(|t| t.join().unwrap()).collect();

    // One flight led, K-1 followers enrolled — and the shards agree: the
    // fleet saw exactly one cache miss for the key.
    assert_eq!(front.router.coalesce_stats(), (1, (K - 1) as u64));
    let total_misses: u64 = (0..2)
        .map(|i| field_u64(&front.shard_stats(i), "\"misses\":"))
        .sum();
    assert_eq!(total_misses, 1, "only the leader reached a shard");

    // Byte-identical modulo the correlation token (same `id`, same stats:
    // followers are settled from the leader's terminal frame verbatim).
    let canonical: Vec<String> = answers
        .iter()
        .map(|(i, line)| line.replace(&format!(",\"client_id\":\"s{i}\""), ""))
        .collect();
    for (i, line) in canonical.iter().enumerate() {
        assert_eq!(line, &canonical[0], "session {i} diverged");
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(line.contains("\"complete\":true"), "{line}");
    }
    for (i, line) in &answers {
        assert!(
            line.contains(&format!("\"client_id\":\"s{i}\"")),
            "session {i} kept its own token: {line}"
        );
    }

    // The relayed stats line carries the router's own coalescing ledger.
    let stats = front.ask("stats\n");
    assert_eq!(stats.len(), 1);
    assert!(
        stats[0].contains(&format!(
            "\"front\":{{\"flights\":1,\"coalesced\":{}}}",
            K - 1
        )),
        "{}",
        stats[0]
    );

    let summary = front.stop();
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.requests, (K + 1) as u64);
}

/// Leader promotion at the router: when the flight leader's client cancels,
/// a follower from another session is promoted — its own line is forwarded
/// under the same flight key — and still gets the complete answer.
#[test]
fn cancelled_leader_promotes_a_follower_session() {
    let front = TestFront::start("promote", 2);
    let rel = pair_complement_inline(5);

    // Session A leads the flight...
    let mut a = front.connect();
    let a_reader = BufReader::new(a.try_clone().unwrap());
    writeln!(a, "mine {rel} z=0 full=true id=leader").unwrap();

    // ...and session B enrolls as its follower.
    let follower_line = format!("mine {rel} z=0 full=true id=dup\n");
    let socket = front.socket.clone();
    let b = std::thread::spawn(move || {
        let mut stream = UnixStream::connect(&socket).unwrap();
        stream.write_all(follower_line.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 1, "{lines:#?}");
        lines.into_iter().next().unwrap()
    });
    let deadline = Instant::now() + Duration::from_secs(5);
    while front.router.coalesce_stats().1 < 1 {
        assert!(Instant::now() < deadline, "follower never enrolled");
        std::thread::sleep(Duration::from_millis(5));
    }

    // A cancels its own request: A gets the cancelled partial + the ack,
    // while B's request is re-forwarded as the flight's new leader.
    writeln!(a, "cancel id=0").unwrap();
    a.shutdown(std::net::Shutdown::Write).unwrap();
    let a_lines: Vec<String> = a_reader.lines().map(|l| l.unwrap()).collect();
    // The cancelled terminal and the cancel ack may arrive in either order
    // (the shard answers the ack independently of the dying mine).
    assert_eq!(a_lines.len(), 2, "{a_lines:#?}");
    assert!(
        a_lines
            .iter()
            .any(|l| l.starts_with("{\"id\":0,") && l.contains("\"halted\":\"cancelled\"")),
        "{a_lines:#?}"
    );
    assert!(
        a_lines
            .iter()
            .any(|l| l.contains("\"kind\":\"cancel\"") && l.contains("\"cancelled\":true")),
        "{a_lines:#?}"
    );

    // B rides out the promotion to a complete, uncancelled answer.
    let b_line = b.join().unwrap();
    assert!(b_line.contains("\"client_id\":\"dup\""), "{b_line}");
    assert!(b_line.contains("\"ok\":true"), "{b_line}");
    assert!(b_line.contains("\"complete\":true"), "{b_line}");
    assert!(!b_line.contains("\"halted\""), "{b_line}");

    // Promotion hands leadership over inside the *same* flight: the ledger
    // still shows one flight led and one follower coalesced.
    assert_eq!(front.router.coalesce_stats(), (1, 1));

    let summary = front.stop();
    assert_eq!(summary.errors, 0);
}
