//! Protocol-torture tests for the epoll readiness-loop transport: every wire
//! fixture replayed through randomized partial writes (proptest-driven split
//! points) and one-byte drips, slow-consumer and never-reading clients,
//! mid-frame disconnects, and a scaled-down C10k soak asserting no chunk
//! loss, no reorder within a stream, and bounded buffering.
//!
//! The whole suite targets the real daemon surface — accepted socket
//! connections serviced by `SocketServer::run` — so on Linux it exercises the
//! readiness loop's line assembly, write-buffer coalescing, and fairness
//! paths, and on other Unixes the thread-per-session fallback must pass the
//! identical contract.

#![cfg(unix)]

use proptest::test_runner::TestRng;
use qld_engine::{Engine, EngineConfig, ServeOptions, SocketServer, TransportSummary};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The fixture corpus: every request shape `docs/WIRE.md` documents —
/// all four kinds, streaming, limits, `full=` loops, control requests,
/// malformed lines, comments, salvaged ids, and `auth=`.
const WIRE_FIXTURES: &[&str] = &[
    "check 0,1;2,3 0,2;0,3;1,2;1,3 id=dual",
    "check 0,1 0;1 id=selfdual",
    "check n=3:- n=3:. id=edgecase",
    "check 0,1;2,3 0,2;0,3;1,2 id=notdual",
    "enumerate 0,1;2,3 id=enum",
    "enumerate 0,1;2,3 limit=2 id=cutoff",
    "enumerate 0,1;2,3;4,5 stream=1 id=streamed",
    "mine 1,2;1,3;2,3 z=1 id=mine",
    "mine 1,2;1,3;2,3 z=1 full=true id=minefull",
    "mine 1,2;1,3;2,3 z=1 full=true stream=true id=minefull-s",
    "keys 1,2,3;1,2,4 id=keys",
    "check 0,1;2,3 0,2;0,3;1,2;1,3 auth=alice id=authed",
    "cancel id=999",
    "# a comment line produces no response",
    "",
    "frobnicate everything id=bad",
    "check 0,1 not-a-hypergraph-( id=salvaged",
    "check 0,1 0;1 auth= id=empty-auth",
    "keys 1,2;1,3 id=tail",
];

fn temp_socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qld-torture-{}-{}.sock", tag, std::process::id()))
}

/// A running daemon for one test: single-worker and cache-less where
/// determinism matters, plus its shutdown plumbing.
struct Daemon {
    path: PathBuf,
    handle: qld_engine::ShutdownHandle,
    runner: thread::JoinHandle<std::io::Result<TransportSummary>>,
}

impl Daemon {
    fn start(tag: &str, config: EngineConfig, options: ServeOptions) -> Daemon {
        let path = temp_socket_path(tag);
        let _ = std::fs::remove_file(&path);
        let engine = Arc::new(Engine::new(config));
        let server = SocketServer::bind(&path).unwrap();
        let handle = server.shutdown_handle();
        let runner = thread::spawn(move || server.run(&engine, options));
        Daemon {
            path,
            handle,
            runner,
        }
    }

    fn connect(&self) -> UnixStream {
        UnixStream::connect(&self.path).unwrap()
    }

    fn stop(self) -> TransportSummary {
        self.handle.shutdown();
        self.runner.join().unwrap().unwrap()
    }
}

/// Deterministic engine for byte-identical replay comparisons: one worker
/// (so completion order is submission order) and no cache (so a replayed
/// stream is re-discovered, not replayed canonically from the cache).
fn deterministic_config() -> EngineConfig {
    EngineConfig {
        workers: 1,
        cache: false,
        ..EngineConfig::default()
    }
}

/// Sends `input` over one connection in the given write chunks, half-closes,
/// and reads every response line until EOF.
fn session_chunked(daemon: &Daemon, input: &[u8], chunks: &[usize]) -> Vec<String> {
    let mut stream = daemon.connect();
    let mut sent = 0;
    for &chunk in chunks {
        let end = (sent + chunk.max(1)).min(input.len());
        if end > sent {
            stream.write_all(&input[sent..end]).unwrap();
            sent = end;
        }
    }
    if sent < input.len() {
        stream.write_all(&input[sent..]).unwrap();
    }
    stream.shutdown(Shutdown::Write).unwrap();
    BufReader::new(stream).lines().map(|l| l.unwrap()).collect()
}

/// Strips the volatile tail of a response line so byte comparison sees only
/// the protocol-determined part: per-request `stats` telemetry (timings,
/// worker shard) and the counters of a `stats`-kind payload vary run to run.
fn normalize(line: &str) -> String {
    let cut = line
        .find(",\"stats\":{")
        .or_else(|| line.find("\"kind\":\"stats\"").map(|i| i + 14))
        .unwrap_or(line.len());
    line[..cut].to_string()
}

/// Groups a session's normalized response lines by request sequence number.
/// Frames of *different* requests may legitimately interleave differently
/// from run to run (streamed chunks and control acks emit on arrival), but
/// within one request the frame sequence — every chunk in order, then the
/// terminal frame — must be byte-identical however the input was split.
fn by_request(lines: &[String]) -> std::collections::BTreeMap<u64, Vec<String>> {
    let mut map: std::collections::BTreeMap<u64, Vec<String>> = std::collections::BTreeMap::new();
    for line in lines {
        map.entry(field_u64(line, "\"id\":"))
            .or_default()
            .push(normalize(line));
    }
    map
}

/// The whole corpus as one input blob.
fn corpus_input() -> Vec<u8> {
    let mut input = Vec::new();
    for line in WIRE_FIXTURES {
        input.extend_from_slice(line.as_bytes());
        input.push(b'\n');
    }
    input
}

#[test]
fn every_fixture_split_one_byte_at_a_time_answers_byte_identically() {
    let daemon = Daemon::start("drip", deterministic_config(), ServeOptions::default());
    let input = corpus_input();
    let whole = by_request(&session_chunked(&daemon, &input, &[input.len()]));
    assert!(
        whole.len() >= WIRE_FIXTURES.len() - 2,
        "fixture corpus looks under-answered: {whole:?}"
    );
    let dripped = by_request(&session_chunked(&daemon, &input, &vec![1; input.len()]));
    assert_eq!(whole, dripped, "one-byte drip changed the responses");
    daemon.stop();
}

#[test]
fn every_fixture_split_at_random_points_answers_byte_identically() {
    let daemon = Daemon::start("splits", deterministic_config(), ServeOptions::default());
    let input = corpus_input();
    let whole = by_request(&session_chunked(&daemon, &input, &[input.len()]));
    // Proptest-driven split points: the shim's deterministic stream makes
    // every run reproducible.
    let mut rng = TestRng::deterministic("transport_torture::random_splits");
    for case in 0..24 {
        let mut chunks = Vec::new();
        let mut remaining = input.len();
        while remaining > 0 {
            // Mostly tiny splits (1..8 bytes), occasionally large ones, so
            // both mid-token and mid-frame boundaries are hit.
            let cap = if rng.next_u64().is_multiple_of(4) {
                64
            } else {
                8
            };
            let take = (rng.next_u64() as usize % cap + 1).min(remaining);
            chunks.push(take);
            remaining -= take;
        }
        let split = by_request(&session_chunked(&daemon, &input, &chunks));
        assert_eq!(
            whole, split,
            "case {case}: split points {chunks:?} changed the responses"
        );
    }
    daemon.stop();
}

#[test]
fn a_slow_consumer_does_not_stall_other_sessions() {
    let daemon = Daemon::start(
        "slow",
        EngineConfig {
            workers: 2,
            cache: false,
            ..EngineConfig::default()
        },
        ServeOptions::default(),
    );
    // The slow consumer: a streamed enumerate with 2^6 = 64 transversals,
    // never reading a byte of it.
    let mut slow = daemon.connect();
    slow.write_all(b"enumerate 0,1;2,3;4,5;6,7;8,9;10,11 stream=1 id=slow\n")
        .unwrap();
    // Give the stream time to start producing into the session's buffers.
    thread::sleep(Duration::from_millis(100));

    // Ten fast sessions must answer promptly while the slow one sits there.
    let started = Instant::now();
    for i in 0..10 {
        let mut fast = daemon.connect();
        writeln!(fast, "check 0,1;2,3 0,2;0,3;1,2;1,3 id=fast{i}").unwrap();
        fast.shutdown(Shutdown::Write).unwrap();
        let lines: Vec<String> = BufReader::new(fast).lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"dual\":true"), "{}", lines[0]);
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "fast sessions took {:?} behind a slow consumer",
        started.elapsed()
    );

    // The never-read stream is still deliverable: read it now and check
    // nothing was lost or reordered while it waited in the write buffer.
    slow.shutdown(Shutdown::Write).unwrap();
    let lines: Vec<String> = BufReader::new(slow).lines().map(|l| l.unwrap()).collect();
    assert_chunk_stream_intact(&lines, "slow", 64);
    daemon.stop();
}

/// Asserts a chunk stream arrived complete and in order: `seq` runs 0..n
/// with no gaps, and the done frame counts exactly n chunks.
fn assert_chunk_stream_intact(lines: &[String], client_id: &str, expect_items: usize) {
    let marker = format!("\"client_id\":\"{client_id}\"");
    let mut item_chunks = 0usize;
    let mut next_seq = 0usize;
    let mut done = None;
    for line in lines.iter().filter(|l| l.contains(&marker)) {
        if line.contains("\"frame\":\"chunk\"") {
            let seq: usize = field_u64(line, "\"seq\":") as usize;
            assert_eq!(seq, next_seq, "chunk reorder or loss: {line}");
            next_seq += 1;
            if line.contains("\"item\":") {
                item_chunks += 1;
            }
        } else if line.contains("\"frame\":\"done\"") {
            done = Some(line.clone());
        }
    }
    let done = done.unwrap_or_else(|| panic!("no done frame for {client_id}: {lines:?}"));
    assert_eq!(item_chunks, expect_items, "{done}");
    assert_eq!(
        field_u64(&done, "\"chunks\":") as usize,
        next_seq,
        "done frame disagrees with delivered chunks: {done}"
    );
    assert!(done.contains("\"complete\":true"), "{done}");
}

/// Extracts the number after `key` in a JSON line (fixture-grade parsing).
fn field_u64(line: &str, key: &str) -> u64 {
    let at = line.find(key).unwrap_or_else(|| panic!("{key} in {line}"));
    line[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn a_client_that_never_reads_is_killed_at_the_write_cap() {
    let daemon = Daemon::start(
        "deadbeat",
        EngineConfig {
            workers: 2,
            cache: false,
            ..EngineConfig::default()
        },
        ServeOptions {
            write_cap: Some(16 * 1024),
            ..ServeOptions::default()
        },
    );
    // A flood of cheap requests (the repeats are cache hits) whose responses
    // total ~1 MiB — far more than the 16 KiB cap plus whatever the kernel
    // socket buffer absorbs.  The client never reads a byte of it.
    let mut deadbeat = daemon.connect();
    let mut flood = Vec::new();
    for i in 0..4000 {
        flood.extend_from_slice(format!("check 0,1;2,3 0,2;0,3;1,2;1,3 id=hog{i}\n").as_bytes());
    }
    // The kill can land while the flood is still being written, so a broken
    // pipe here is already the expected outcome, not a failure.
    let _ = deadbeat.write_all(&flood);

    // The deadbeat never reads a byte.  The kill is observed from outside:
    // fresh probe connections watch the `connections` gauge until only the
    // probe itself is left, proving the over-cap session was dropped (and
    // the daemon survived it) with nothing left in flight.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let mut probe = daemon.connect();
        writeln!(probe, "stats").unwrap();
        let mut line = String::new();
        BufReader::new(probe.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        if field_u64(&line, "\"connections\":") == 1 && field_u64(&line, "\"inflight\":") == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "over-cap session was never killed: {line}"
        );
        thread::sleep(Duration::from_millis(50));
    }

    // And the dead client's view: after the buffered bytes, EOF or a reset.
    deadbeat
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut sink = [0u8; 65536];
    loop {
        match deadbeat.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == ErrorKind::ConnectionReset => break,
            Err(e) => panic!("killed session should end in EOF or reset, got: {e}"),
        }
    }
    daemon.stop();
}

#[test]
fn mid_frame_disconnects_leave_the_daemon_serving() {
    let daemon = Daemon::start("midframe", deterministic_config(), ServeOptions::default());
    // A request line cut off mid-token, connection dropped.
    let mut partial = daemon.connect();
    partial.write_all(b"check 0,1;2,3 0,2;0,").unwrap();
    drop(partial);

    // A streamed request abandoned after the first chunk.
    let mut abandoned = daemon.connect();
    abandoned
        .write_all(b"enumerate 0,1;2,3;4,5 stream=1 id=gone\n")
        .unwrap();
    let mut reader = BufReader::new(abandoned.try_clone().unwrap());
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    assert!(first.contains("\"frame\":\"chunk\""), "{first}");
    drop(reader);
    drop(abandoned);

    // The daemon keeps answering new sessions correctly afterwards.
    for i in 0..3 {
        let mut stream = daemon.connect();
        writeln!(stream, "keys 1,2;1,3 id=after{i}").unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"kind\":\"keys\""), "{}", lines[0]);
    }
    let summary = daemon.stop();
    assert_eq!(summary.connections, 5);
}

/// The scaled-down C10k soak: ≥1k concurrent connections — mostly idle, a
/// working subset streaming — with no chunk loss, no reorder within any
/// stream, a live `connections` gauge, and all buffers drained at the end.
#[test]
fn soak_a_thousand_concurrent_connections() {
    // Two fds per connection (client end + accepted end) live in this one
    // process; make sure the limit accommodates them on constrained CI.
    let limit = epoll::raise_nofile_limit(4096).unwrap();
    assert!(limit >= 4096, "nofile limit too low for the soak: {limit}");

    const IDLE: usize = 1000;
    const ACTIVE: usize = 24;
    const STREAM_ITEMS: usize = 8; // enumerate over 3 disjoint pairs: 2^3
    let daemon = Daemon::start(
        "soak",
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        ServeOptions::default(),
    );

    // A wall of idle connections: accepted, registered, never speaking.
    let idle: Vec<UnixStream> = (0..IDLE).map(|_| daemon.connect()).collect();

    // The connection gauge sees the wall (idle + probe).
    let mut probe = daemon.connect();
    writeln!(probe, "stats id=mid-soak").unwrap();
    let mut line = String::new();
    BufReader::new(probe.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(
        field_u64(&line, "\"connections\":") >= (IDLE + 1) as u64,
        "{line}"
    );
    drop(probe);

    // Active sessions: every one interleaves a stream with one-shot requests
    // over its own connection, concurrently with the whole idle wall.
    let workers: Vec<_> = (0..ACTIVE)
        .map(|c| {
            let path = daemon.path.clone();
            thread::spawn(move || {
                let mut stream = UnixStream::connect(&path).unwrap();
                write!(
                    stream,
                    "check 0,1;2,3 0,2;0,3;1,2;1,3 id=pre{c}\n\
                     enumerate 0,1;2,3;4,5 stream=1 id=s{c}\n\
                     keys 1,2;1,3 id=post{c}\n"
                )
                .unwrap();
                stream.shutdown(Shutdown::Write).unwrap();
                let lines: Vec<String> =
                    BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
                (c, lines)
            })
        })
        .collect();
    for worker in workers {
        let (c, lines) = worker.join().unwrap();
        assert!(
            lines.iter().any(
                |l| l.contains(&format!("\"client_id\":\"pre{c}\"")) // one-shot
                    && l.contains("\"dual\":true")
            ),
            "client {c}: {lines:?}"
        );
        assert_chunk_stream_intact(&lines, &format!("s{c}"), STREAM_ITEMS);
        assert!(
            lines
                .iter()
                .any(|l| l.contains(&format!("\"client_id\":\"post{c}\""))
                    && l.contains("\"kind\":\"keys\"")),
            "client {c}: {lines:?}"
        );
    }

    // Drop the wall; the daemon must notice every hangup and come back to a
    // single live connection with nothing in flight — i.e. no leaked session
    // state or buffers for a thousand vanished clients.
    drop(idle);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut end_probes = 0u64;
    loop {
        let mut probe = daemon.connect();
        end_probes += 1;
        writeln!(probe, "stats id=end").unwrap();
        let mut last = String::new();
        BufReader::new(probe.try_clone().unwrap())
            .read_line(&mut last)
            .unwrap();
        if field_u64(&last, "\"connections\":") == 1 && field_u64(&last, "\"inflight\":") == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "idle wall never drained: {last}");
        thread::sleep(Duration::from_millis(50));
    }

    let summary = daemon.stop();
    assert_eq!(
        summary.connections,
        (IDLE + ACTIVE) as u64 + 1 + end_probes,
        "unexpected connection total: {summary:?}"
    );
    assert_eq!(summary.errors, 0, "{summary:?}");
}
